// Codec tests: wire round-trips, framing errors, and — central to the paper —
// the control-bit accounting of every frame type of every algorithm.
#include <gtest/gtest.h>

#include "abd/phased_codec.hpp"
#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "core/twobit_codec.hpp"

namespace tbr {
namespace {

// ---- two-bit codec ---------------------------------------------------------------

TEST(TwoBitCodecTest, WriteFrameRoundTrip) {
  const auto& codec = twobit_codec();
  Message msg;
  msg.type = static_cast<std::uint8_t>(TwoBitType::kWrite1);
  msg.has_value = true;
  msg.value = Value::from_string("payload");
  msg.wire = codec.account(msg);
  const auto bytes = codec.encode(msg);
  const Message back = codec.decode(bytes);
  EXPECT_EQ(back.type, msg.type);
  EXPECT_TRUE(back.has_value);
  EXPECT_EQ(back.value, msg.value);
}

TEST(TwoBitCodecTest, ControlFrameIsOneByte) {
  const auto& codec = twobit_codec();
  Message msg;
  msg.type = static_cast<std::uint8_t>(TwoBitType::kRead);
  EXPECT_EQ(codec.encode(msg).size(), 1u);
  msg.type = static_cast<std::uint8_t>(TwoBitType::kProceed);
  EXPECT_EQ(codec.encode(msg).size(), 1u);
}

TEST(TwoBitCodecTest, EveryTypeCostsExactlyTwoControlBits) {
  const auto& codec = twobit_codec();
  for (std::uint8_t type = 0; type <= 3; ++type) {
    Message msg;
    msg.type = type;
    if (type <= 1) {
      msg.has_value = true;
      msg.value = Value::from_int64(1);
    }
    EXPECT_EQ(codec.account(msg).control_bits, 2u) << unsigned(type);
  }
}

TEST(TwoBitCodecTest, DataBitsCoverValueAndFraming) {
  const auto& codec = twobit_codec();
  Message msg;
  msg.type = static_cast<std::uint8_t>(TwoBitType::kWrite0);
  msg.has_value = true;
  msg.value = Value::filler(10);
  EXPECT_EQ(codec.account(msg).data_bits, 32u + 80u);
  Message control;
  control.type = static_cast<std::uint8_t>(TwoBitType::kRead);
  EXPECT_EQ(codec.account(control).data_bits, 0u);
}

TEST(TwoBitCodecTest, RejectsSequenceNumbersOnTheWire) {
  const auto& codec = twobit_codec();
  Message msg;
  msg.type = static_cast<std::uint8_t>(TwoBitType::kRead);
  msg.seq = 7;  // the whole point of the paper: this field must not exist
  EXPECT_THROW((void)codec.encode(msg), ContractViolation);
}

TEST(TwoBitCodecTest, RejectsValuelessWriteAndValuedControl) {
  const auto& codec = twobit_codec();
  Message w;
  w.type = static_cast<std::uint8_t>(TwoBitType::kWrite0);
  EXPECT_THROW((void)codec.encode(w), ContractViolation);
  Message r;
  r.type = static_cast<std::uint8_t>(TwoBitType::kProceed);
  r.has_value = true;
  r.value = Value::from_int64(1);
  EXPECT_THROW((void)codec.encode(r), ContractViolation);
}

TEST(TwoBitCodecTest, DecodeRejectsMalformedFrames) {
  const auto& codec = twobit_codec();
  EXPECT_THROW((void)codec.decode(""), ContractViolation);
  EXPECT_THROW((void)codec.decode("\x07"), ContractViolation);  // bad type
  // WRITE frame with truncated length prefix.
  EXPECT_THROW((void)codec.decode(std::string("\x00\x01", 2)),
               ContractViolation);
  // Trailing garbage after a READ frame.
  EXPECT_THROW((void)codec.decode(std::string("\x02junk", 5)),
               ContractViolation);
}

TEST(TwoBitCodecTest, TypeNames) {
  const auto& codec = twobit_codec();
  EXPECT_EQ(codec.type_name(0), "WRITE0");
  EXPECT_EQ(codec.type_name(1), "WRITE1");
  EXPECT_EQ(codec.type_name(2), "READ");
  EXPECT_EQ(codec.type_name(3), "PROCEED");
}

TEST(TwoBitCodecTest, EmptyValueWriteRoundTrip) {
  const auto& codec = twobit_codec();
  Message msg;
  msg.type = static_cast<std::uint8_t>(TwoBitType::kWrite0);
  msg.has_value = true;  // empty payload is a legal register value
  const Message back = codec.decode(codec.encode(msg));
  EXPECT_TRUE(back.has_value);
  EXPECT_TRUE(back.value.empty());
}

// ---- phased codec -----------------------------------------------------------------

TEST(PhasedCodecTest, RoundTripAllFields) {
  const PhasedCodec codec(abd_unbounded_spec(), 5);
  Message msg;
  msg.type = static_cast<std::uint8_t>(PhasedType::kQueryReply);
  msg.aux = 123456;
  msg.seq = 987;
  msg.has_value = true;
  msg.value = Value::from_string("abc");
  const Message back = codec.decode(codec.encode(msg));
  EXPECT_EQ(back.type, msg.type);
  EXPECT_EQ(back.aux, msg.aux);
  EXPECT_EQ(back.seq, msg.seq);
  EXPECT_EQ(back.value, msg.value);
}

TEST(PhasedCodecTest, UnboundedControlBitsGrowWithSeq) {
  const PhasedCodec codec(abd_unbounded_spec(), 5);
  Message small;
  small.type = static_cast<std::uint8_t>(PhasedType::kPhaseReq);
  small.aux = 1;
  small.seq = 1;
  Message large = small;
  large.seq = (1LL << 40);
  EXPECT_GT(codec.account(large).control_bits,
            codec.account(small).control_bits);
  // Exactly: 3 type bits + minimal encodings.
  EXPECT_EQ(codec.account(small).control_bits,
            PhasedCodec::kTypeBits + 1 + 1);
  EXPECT_EQ(codec.account(large).control_bits,
            PhasedCodec::kTypeBits + 1 + 41);
}

TEST(PhasedCodecTest, BoundedLabelDominatesControlBits) {
  const std::uint32_t n = 7;
  const PhasedCodec bounded(abd_bounded_spec(), n);
  const PhasedCodec attiya(attiya_spec(), n);
  Message msg;
  msg.type = static_cast<std::uint8_t>(PhasedType::kPhaseReq);
  msg.aux = 65;
  msg.seq = 1;
  const auto n5 = pow_saturating(n, 5);
  const auto n3 = pow_saturating(n, 3);
  EXPECT_EQ(bounded.account(msg).control_bits,
            PhasedCodec::kTypeBits + 7 + 1 + n5);
  EXPECT_EQ(attiya.account(msg).control_bits,
            PhasedCodec::kTypeBits + 7 + 1 + n3);
}

TEST(PhasedCodecTest, PhysicalLabelBytesAreCapped) {
  // n = 32: n^5 bits = 4 MiB — physical frames must stay capped while the
  // accounting stays analytic.
  const PhasedCodec codec(abd_bounded_spec(), 32);
  Message msg;
  msg.type = static_cast<std::uint8_t>(PhasedType::kPhaseAck);
  msg.aux = 1;
  const auto bytes = codec.encode(msg);
  EXPECT_LE(bytes.size(), PhasedCodec::kMaxPhysicalLabelBytes + 64);
  EXPECT_EQ(codec.account(msg).control_bits,
            PhasedCodec::kTypeBits + 1 + 1 + pow_saturating(32, 5));
  // And the capped frame still round-trips.
  const Message back = codec.decode(bytes);
  EXPECT_EQ(back.aux, 1);
}

TEST(PhasedCodecTest, LabelBitsZeroForUnbounded) {
  const PhasedCodec codec(abd_unbounded_spec(), 9);
  EXPECT_EQ(codec.label_bits(), 0u);
}

TEST(PhasedCodecTest, DecodeRejectsTruncation) {
  const PhasedCodec codec(abd_unbounded_spec(), 3);
  Message msg;
  msg.type = static_cast<std::uint8_t>(PhasedType::kPhaseAck);
  msg.aux = 5;
  const auto bytes = codec.encode(msg);
  EXPECT_THROW((void)codec.decode(bytes.substr(0, bytes.size() - 1)),
               ContractViolation);
  EXPECT_THROW((void)codec.decode(bytes + "x"), ContractViolation);
}

TEST(PhasedCodecTest, TypeNames) {
  const PhasedCodec codec(abd_unbounded_spec(), 3);
  EXPECT_EQ(codec.type_name(0), "PHASE_REQ");
  EXPECT_EQ(codec.type_name(1), "PHASE_ACK");
  EXPECT_EQ(codec.type_name(2), "QUERY_REPLY");
  EXPECT_EQ(codec.type_name(3), "ECHO");
}

// ---- spec sanity ---------------------------------------------------------------------

TEST(SpecsTest, PhaseCountsMatchTable1Timing) {
  // Time per op = 2Δ per phase: Table 1 lines 5-6.
  EXPECT_EQ(abd_unbounded_spec().write_phases.size(), 1u);   // 2Δ
  EXPECT_EQ(abd_unbounded_spec().read_phases.size(), 2u);    // 4Δ
  EXPECT_EQ(abd_bounded_spec().write_phases.size(), 6u);     // 12Δ
  EXPECT_EQ(abd_bounded_spec().read_phases.size(), 6u);      // 12Δ
  EXPECT_EQ(attiya_spec().write_phases.size(), 7u);          // 14Δ
  EXPECT_EQ(attiya_spec().read_phases.size(), 9u);           // 18Δ
}

TEST(SpecsTest, ReadsStartWithQuery) {
  EXPECT_EQ(abd_unbounded_spec().read_phases[0], PhaseKind::kQuery);
  EXPECT_EQ(abd_bounded_spec().read_phases[0], PhaseKind::kQuery);
  EXPECT_EQ(attiya_spec().read_phases[0], PhaseKind::kQuery);
}

TEST(SpecsTest, OnlyBoundedAbdEchoes) {
  EXPECT_FALSE(abd_unbounded_spec().echo);
  EXPECT_TRUE(abd_bounded_spec().echo);
  EXPECT_FALSE(attiya_spec().echo);
}

}  // namespace
}  // namespace tbr
