// Property suite: the paper's Lemmas 1-5 and Properties P1/P2, checked as
// executable invariants after *every* simulator event, across a sweep of
// group sizes, delay models (including the adversarial flip-flop reorderer)
// and crash patterns.
#include <gtest/gtest.h>

#include "core/invariants.hpp"
#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

struct InvariantCase {
  std::uint32_t n;
  std::uint32_t t;
  std::uint32_t crashes;
  const char* delay;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<InvariantCase>& info) {
  const auto& c = info.param;
  return "n" + std::to_string(c.n) + "t" + std::to_string(c.t) + "c" +
         std::to_string(c.crashes) + "_" + c.delay + "_s" +
         std::to_string(c.seed);
}

std::unique_ptr<DelayModel> make_delay(const std::string& kind,
                                       const GroupConfig& cfg) {
  if (kind == "const") return make_constant_delay(100);
  if (kind == "uniform") return make_uniform_delay(1, 1000);
  if (kind == "expo") return make_exponential_delay(200, 5000);
  if (kind == "flipflop") return make_flipflop_delay(5, 2000, cfg.n);
  if (kind == "straggler") {
    return make_straggler_delay(cfg.n - 1, 3000, 10);
  }
  TBR_ENSURE(false, "unknown delay kind");
  return nullptr;
}

class TwoBitInvariantSweep : public testing::TestWithParam<InvariantCase> {};

TEST_P(TwoBitInvariantSweep, LemmasHoldOnEveryEvent) {
  const auto& c = GetParam();
  SimWorkloadOptions opt;
  opt.cfg.n = c.n;
  opt.cfg.t = c.t;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.seed = c.seed;
  opt.ops_per_process = 12;
  opt.writer_read_fraction = 0.25;
  opt.think_time_max = 500;
  opt.crashes = c.crashes;
  opt.crash_horizon = 20'000;
  opt.invariant_checks = true;
  opt.delay_factory = [kind = std::string(c.delay)](const GroupConfig& cfg) {
    return make_delay(kind, cfg);
  };

  const auto result = run_sim_workload(opt);
  EXPECT_TRUE(result.drained) << "simulation did not drain";
  EXPECT_GT(result.invariant_checks, 0u);
  // Liveness (Lemmas 8/9): every never-crashed process finished its quota.
  EXPECT_EQ(result.completed_by_correct, result.quota_of_correct);
  // And the history is atomic, while we are at it.
  const auto check = result.check_atomicity(opt.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
}

std::vector<InvariantCase> invariant_cases() {
  std::vector<InvariantCase> cases;
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> sizes = {
      {1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 2}, {7, 3}, {9, 4}};
  const std::vector<const char*> delays = {"const", "uniform", "flipflop"};
  std::uint64_t seed = 1;
  for (const auto& [n, t] : sizes) {
    for (const auto* delay : delays) {
      cases.push_back({n, t, 0, delay, seed++});
    }
  }
  // Crashy runs (faulty minority), all delay models.
  const std::vector<const char*> all_delays = {"const", "uniform", "expo",
                                               "flipflop", "straggler"};
  for (const auto* delay : all_delays) {
    cases.push_back({5, 2, 2, delay, seed++});
    cases.push_back({7, 3, 3, delay, seed++});
  }
  // Seed diversity on the nastiest configuration.
  for (std::uint64_t s = 100; s < 112; ++s) {
    cases.push_back({6, 2, 2, "flipflop", s});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TwoBitInvariantSweep,
                         testing::ValuesIn(invariant_cases()), case_name);

// Writer-crash runs: the writer dying mid-write must leave every invariant
// and atomicity intact (the final write may hang in limbo).
class TwoBitWriterCrashSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoBitWriterCrashSweep, WriterCrashKeepsInvariants) {
  SimWorkloadOptions opt;
  opt.cfg.n = 5;
  opt.cfg.t = 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.seed = GetParam();
  opt.ops_per_process = 10;
  opt.think_time_max = 300;
  opt.crashes = 2;
  opt.allow_writer_crash = true;
  opt.crash_horizon = 8'000;
  opt.invariant_checks = true;
  opt.delay_factory = [](const GroupConfig&) {
    return make_uniform_delay(1, 800);
  };

  const auto result = run_sim_workload(opt);
  EXPECT_TRUE(result.drained);
  const auto check = result.check_atomicity(opt.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoBitWriterCrashSweep,
                         testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace tbr
