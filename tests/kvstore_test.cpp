// KV-store layer (src/kvstore): slot multiplexing, key placement, per-key
// register semantics, cross-key independence, crash behaviour of homed
// shards, and per-key linearizability under interleaved multi-key traffic.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "checker/swmr_checker.hpp"
#include "core/twobit_codec.hpp"
#include "kvstore/kv_store.hpp"

namespace tbr {
namespace {

KvStore::Options small_store(std::uint32_t slots = 8,
                             std::uint64_t seed = 1) {
  KvStore::Options opt;
  opt.n = 5;
  opt.t = 2;
  opt.slots = slots;
  opt.seed = seed;
  opt.initial = Value();
  return opt;
}

TEST(KvStore, PutThenGetAtEveryReplica) {
  KvStore store(small_store());
  store.client().put_sync("alpha", Value::from_string("1"));
  for (ProcessId pid = 0; pid < store.node_count(); ++pid) {
    const auto got = store.client().get_sync("alpha", pid);
    EXPECT_EQ(got.value.to_string(), "1") << "replica " << pid;
    EXPECT_EQ(got.version, 1);
  }
}

TEST(KvStore, UnwrittenKeyReturnsInitial) {
  auto opt = small_store();
  opt.initial = Value::from_string("<default>");
  KvStore store(std::move(opt));
  const auto got = store.client().get_sync("never-written", 2);
  EXPECT_EQ(got.value.to_string(), "<default>");
  EXPECT_EQ(got.version, 0);
}

TEST(KvStore, OverwritesBumpVersions) {
  KvStore store(small_store());
  for (int k = 1; k <= 10; ++k) {
    store.client().put_sync("counter", Value::from_int64(k));
    const auto got = store.client().get_sync("counter", static_cast<ProcessId>(k % 5));
    EXPECT_EQ(got.value.to_int64(), k);
    EXPECT_EQ(got.version, k);
  }
}

TEST(KvStore, KeysAreIndependent) {
  KvStore store(small_store(16));
  store.client().put_sync("a", Value::from_string("va"));
  store.client().put_sync("b", Value::from_string("vb"));
  store.client().put_sync("a", Value::from_string("va2"));
  EXPECT_EQ(store.client().get_sync("a", 1).value.to_string(), "va2");
  EXPECT_EQ(store.client().get_sync("b", 1).value.to_string(), "vb");
  EXPECT_EQ(store.client().get_sync("a", 1).version, 2);
  EXPECT_EQ(store.client().get_sync("b", 1).version, 1) << "b's slot register untouched";
}

TEST(KvStore, PlacementIsStableAndSpreads) {
  KvStore store(small_store(16));
  std::map<ProcessId, int> per_home;
  for (int k = 0; k < 64; ++k) {
    const std::string key = "key-" + std::to_string(k);
    EXPECT_EQ(store.slot_of(key), store.slot_of(key)) << "stable hashing";
    EXPECT_EQ(store.home_node(key), store.slot_of(key) % store.node_count());
    per_home[store.home_node(key)] += 1;
  }
  EXPECT_GE(per_home.size(), 4u) << "64 keys should touch most homes";
}

TEST(KvStore, ControlBitsStayTwoPerProtocolFrame) {
  KvStore store(small_store());
  store.client().put_sync("x", Value::from_int64(1));
  store.client().put_sync("y", Value::from_int64(2));
  (void)store.client().get_sync("x", 3);
  store.settle();
  const auto& stats = store.net().stats();
  EXPECT_GT(stats.total_sent(), 0u);
  // Every mux envelope carries its embedded register frame's control bits
  // (2 for the two-bit algorithm); the slot tag rides as data-plane bytes.
  EXPECT_EQ(stats.max_control_bits_per_msg(),
            TwoBitCodec::kControlBitsPerMessage);
}

TEST(KvStore, HomedShardDiesWithItsNodeOthersSurvive) {
  KvStore store(small_store(10));
  // Find two keys with different home nodes.
  std::string doomed_key, safe_key;
  for (int k = 0; k < 100 && (doomed_key.empty() || safe_key.empty()); ++k) {
    const std::string key = "k" + std::to_string(k);
    if (store.home_node(key) == 4) {
      if (doomed_key.empty()) doomed_key = key;
    } else if (safe_key.empty()) {
      safe_key = key;
    }
  }
  ASSERT_FALSE(doomed_key.empty());
  ASSERT_FALSE(safe_key.empty());

  store.client().put_sync(doomed_key, Value::from_string("before"));
  store.client().put_sync(safe_key, Value::from_string("s1"));
  store.crash(4);

  // Writes to the dead shard are refused (single-writer is a *placement*,
  // not a magic failover — DESIGN.md discusses the reconfiguration gap)...
  EXPECT_EQ(store.client()
                .put_sync(doomed_key, Value::from_string("after"))
                .status.code(),
            StatusCode::kCrashed);
  // ...but its data stays readable at live replicas (reads are quorum ops),
  EXPECT_EQ(store.client().get_sync(doomed_key, 1).value.to_string(), "before");
  // ...and unrelated shards keep accepting writes.
  store.client().put_sync(safe_key, Value::from_string("s2"));
  EXPECT_EQ(store.client().get_sync(safe_key, 0).value.to_string(), "s2");
  // Reading *at* the corpse is refused.
  EXPECT_EQ(store.client().get_sync(safe_key, 4).status.code(),
            StatusCode::kCrashed);
}

TEST(KvStore, MemoryGrowsWithDistinctKeysWritten) {
  KvStore store(small_store(32));
  store.settle();
  const auto before = store.total_memory_bytes();
  for (int k = 0; k < 32; ++k) {
    store.client().put_sync("key-" + std::to_string(k), Value::filler(64));
  }
  store.settle();
  EXPECT_GT(store.total_memory_bytes(), before)
      << "each slot's register history retains its writes";
}

// Per-key linearizability: interleave overlapping ops on several keys via
// the async mux API, record one history per slot, check each independently.
TEST(KvStore, PerKeyHistoriesLinearizeUnderInterleaving) {
  KvStore store(small_store(4, /*seed=*/99));
  auto& net = store.net();

  struct KeyPlan {
    std::string key;
    std::uint32_t slot;
    ProcessId home;
    SeqNo next_version = 0;
  };
  // Pick three keys living in three *distinct* slots (keys sharing a slot
  // share a register and its single writer, which this test's independent
  // write loops must not do).
  std::vector<KeyPlan> keys;
  for (int k = 0; keys.size() < 3 && k < 1000; ++k) {
    const std::string name = "key-" + std::to_string(k);
    const std::uint32_t slot = store.slot_of(name);
    bool taken = false;
    for (const KeyPlan& existing : keys) taken |= existing.slot == slot;
    if (taken) continue;
    KeyPlan plan;
    plan.key = name;
    plan.slot = slot;
    plan.home = store.home_node(name);
    keys.push_back(plan);
  }
  ASSERT_EQ(keys.size(), 3u);

  std::map<std::uint32_t, HistoryLog> logs;  // slot -> history
  // Writer loops per key and reader loops per (key, replica) — all async,
  // all overlapping in simulated time.
  std::function<void(std::size_t, int)> issue_write =
      [&](std::size_t key_idx, int round) {
        if (round > 6) return;
        KeyPlan& plan = keys[key_idx];
        auto& mux = net.process_as<MuxProcess>(plan.home);
        const SeqNo version = ++plan.next_version;
        Value v = Value::from_int64(round * 100 + static_cast<int>(key_idx));
        const auto id =
            logs[plan.slot].begin_write(plan.home, net.now(), version, v);
        mux.start_write(net.context(plan.home), plan.slot, std::move(v),
                        [&, key_idx, round, id] {
                          logs[keys[key_idx].slot].end_write(id, net.now());
                          issue_write(key_idx, round + 1);
                        });
      };
  std::function<void(std::size_t, ProcessId, int)> issue_read =
      [&](std::size_t key_idx, ProcessId reader, int round) {
        if (round > 6) return;
        KeyPlan& plan = keys[key_idx];
        auto& mux = net.process_as<MuxProcess>(reader);
        const auto id = logs[plan.slot].begin_read(reader, net.now());
        mux.start_read(net.context(reader), plan.slot,
                       [&, key_idx, reader, round, id](const Value& v,
                                                       SeqNo index) {
                         logs[keys[key_idx].slot].end_read(id, net.now(), v,
                                                           index);
                         issue_read(key_idx, reader, round + 1);
                       });
      };

  for (std::size_t k = 0; k < keys.size(); ++k) {
    net.schedule_at(static_cast<Tick>(k) * 37 + 1,
                    [&, k] { issue_write(k, 1); });
    for (ProcessId reader = 1; reader < 4; ++reader) {
      // The home node's register instance is busy with the write loop
      // (one op per process per register — the model's sequential client).
      if (reader == keys[k].home) continue;
      net.schedule_at(static_cast<Tick>(k * 53 + reader * 11 + 2),
                      [&, k, reader] { issue_read(k, reader, 1); });
    }
  }
  ASSERT_TRUE(net.run());

  ASSERT_GE(logs.size(), 2u) << "keys should map to several slots";
  for (auto& [slot, log] : logs) {
    const auto check = SwmrChecker::check(log.ops(), Value());
    EXPECT_TRUE(check.ok) << "slot " << slot << ": " << check.error;
    EXPECT_GT(log.completed_count(), 0u);
  }
}

}  // namespace
}  // namespace tbr
