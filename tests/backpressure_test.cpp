// Backpressure: the watermark state machine on one Connection, and the
// whole-runtime behaviour — a slow reader parks writers at high water,
// EPOLLOUT-driven drains resume them at low water, and nothing queued is
// ever lost or reordered across the transition.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "transport/connection.hpp"
#include "transport/frame_buffer.hpp"
#include "transport/socket_network.hpp"

namespace tbr {
namespace {

using namespace std::chrono_literals;

bool eventually(const std::function<bool()>& pred,
                std::chrono::milliseconds budget = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

std::string frame_payload(std::uint32_t k, std::size_t size) {
  std::string payload(size, static_cast<char>('a' + (k % 26)));
  payload[0] = static_cast<char>(k & 0xFF);
  payload[1] = static_cast<char>((k >> 8) & 0xFF);
  return payload;
}

TEST(ConnLimitsTest, ValidationRejectsInvertedWatermarks) {
  ConnLimits bad;
  bad.outbuf_high_water = 1024;
  bad.outbuf_low_water = 1024;  // must be strictly below
  EXPECT_THROW(bad.validate(), ContractViolation);
  bad.outbuf_low_water = 64;
  EXPECT_NO_THROW(bad.validate());
  bad.read_budget = 0;
  EXPECT_THROW(bad.validate(), ContractViolation);
}

TEST(ConnectionTest, ParksAtHighWaterResumesAtLowWaterNoLossNoReorder) {
  auto [writer_fd, reader_fd] = tcp::make_loopback_pair();
  // Tiny kernel buffers: the userspace outbuf backs up after a handful of
  // frames instead of megabytes.
  tcp::set_sndbuf(writer_fd.get(), 4 * 1024);
  tcp::set_rcvbuf(reader_fd.get(), 4 * 1024);
  tcp::set_nonblocking(writer_fd.get());
  tcp::set_nonblocking(reader_fd.get());

  ConnLimits limits;
  limits.outbuf_high_water = 32 * 1024;
  limits.outbuf_low_water = 8 * 1024;
  Connection conn;
  conn.configure(limits);
  conn.adopt(std::move(writer_fd));

  // Queue (and opportunistically flush) frames until the connection parks.
  constexpr std::size_t kFrame = 1024;
  std::uint32_t queued = 0;
  bool parked = false;
  while (!parked) {
    ASSERT_LT(queued, 10'000u) << "never parked";
    parked = conn.queue_frame(frame_payload(queued, kFrame));
    ++queued;
    const auto fo = conn.flush();
    ASSERT_NE(fo.status, IoStatus::kClosed);
    ASSERT_FALSE(fo.resumed) << "resume without a drain";
  }
  EXPECT_TRUE(conn.paused());
  EXPECT_GE(conn.queued_bytes(), limits.outbuf_high_water);

  // While parked with the kernel buffers full, flushing makes no progress
  // and must not resume.
  const auto stuck = conn.flush();
  EXPECT_EQ(stuck.status, IoStatus::kOk);
  EXPECT_FALSE(stuck.resumed);
  EXPECT_TRUE(conn.paused());

  // Drain the reader side; keep flushing. The connection must resume at
  // (or below) low water, and every frame must come out in order.
  FrameBuffer rx;
  std::uint32_t received = 0;
  bool resumed = false;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (received < queued) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "drain stalled";
    (void)tcp::read_some(reader_fd.get(), rx.tail(), 64 * 1024);
    std::string_view frame;
    while (rx.next_frame(frame)) {
      ASSERT_EQ(frame.size(), kFrame);
      const auto k = static_cast<std::uint32_t>(
                         static_cast<unsigned char>(frame[0])) |
                     (static_cast<std::uint32_t>(
                          static_cast<unsigned char>(frame[1]))
                      << 8);
      ASSERT_EQ(k, received) << "frame loss or reorder across the park";
      ++received;
    }
    const auto fo = conn.flush();
    ASSERT_NE(fo.status, IoStatus::kClosed);
    if (fo.resumed) {
      resumed = true;
      EXPECT_LE(conn.queued_bytes(), limits.outbuf_low_water);
    }
  }
  EXPECT_TRUE(resumed) << "low-water transition never fired";
  EXPECT_FALSE(conn.paused());
  EXPECT_EQ(received, queued);
}

TEST(ConnectionTest, WriteBudgetBoundsOneFlushRound) {
  auto [writer_fd, reader_fd] = tcp::make_loopback_pair();
  tcp::set_nonblocking(writer_fd.get());
  ConnLimits limits;
  limits.write_budget = 4 * 1024;
  Connection conn;
  conn.configure(limits);
  conn.adopt(std::move(writer_fd));

  conn.queue_frame(std::string(64 * 1024, 'z'));
  const std::size_t before = conn.queued_bytes();
  const auto fo = conn.flush();
  EXPECT_EQ(fo.status, IoStatus::kOk);
  // One readiness round moves at most write_budget bytes — a hot
  // connection cannot monopolize its loop.
  EXPECT_GE(conn.queued_bytes(), before - limits.write_budget);
  EXPECT_TRUE(conn.wants_write());
}

TEST(ConnectionTest, ReadBudgetBoundsOneReadRound) {
  auto [writer_fd, reader_fd] = tcp::make_loopback_pair();
  tcp::set_nonblocking(reader_fd.get());
  // Fill from the writer side (blocking is fine: the kernel buffers it).
  const std::string blob(48 * 1024, 'q');
  tcp::write_all_blocking(writer_fd.get(), blob.data(), blob.size());

  ConnLimits limits;
  limits.read_budget = 8 * 1024;
  Connection conn;
  conn.configure(limits);
  conn.adopt(std::move(reader_fd));
  // 48 KiB are waiting, but one readiness round buffers at most
  // read_budget bytes.
  EXPECT_EQ(conn.read_budgeted(), IoStatus::kOk);
  EXPECT_GT(conn.inbuf_pending(), 0u);
  EXPECT_LE(conn.inbuf_pending(), limits.read_budget);
  // The next round picks up another budget's worth, no more.
  EXPECT_EQ(conn.read_budgeted(), IoStatus::kOk);
  EXPECT_LE(conn.inbuf_pending(), 2 * limits.read_budget);
  EXPECT_GT(conn.inbuf_pending(), limits.read_budget);
}

TEST(ConnectionTest, TeardownOnPeerCloseReportsClosed) {
  auto [writer_fd, reader_fd] = tcp::make_loopback_pair();
  tcp::set_nonblocking(writer_fd.get());
  Connection conn;
  conn.configure(ConnLimits{});
  conn.adopt(std::move(writer_fd));
  reader_fd.reset();  // peer gone
  // Stuff until the kernel notices the reset (first writes may succeed).
  Connection::FlushOutcome fo;
  for (int k = 0; k < 64 && fo.status != IoStatus::kClosed; ++k) {
    conn.queue_frame(std::string(8 * 1024, 'x'));
    fo = conn.flush();
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(fo.status, IoStatus::kClosed);
  conn.close();
  EXPECT_FALSE(conn.alive());
  EXPECT_EQ(conn.queued_bytes(), 0u);
  EXPECT_FALSE(conn.paused());
}

// ---- whole-runtime backpressure --------------------------------------------------

TEST(SocketBackpressureTest, SlowReaderParksWriterThenResumesWithoutLoss) {
  SocketNetwork::Options opt;
  opt.cfg.n = 3;
  opt.cfg.t = 1;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  // The ABD baseline, deliberately: its writer broadcasts every phase to
  // every peer unconditionally, so a slow reader's channel backs up. (The
  // paper's two-bit algorithm is self-clocking per channel — at most one
  // unconfirmed WRITE per peer — so it can never flood a peer on its own;
  // the transport-level backpressure exists for protocols without that
  // discipline, and for it we need one here.)
  opt.algo = Algorithm::kAbdUnbounded;
  // Small watermarks AND small kernel buffers: loopback sockets auto-tune
  // into the megabytes and would absorb the whole backlog before the
  // userspace outbuf ever crossed high water.
  opt.limits.outbuf_high_water = 64 * 1024;
  opt.limits.outbuf_low_water = 16 * 1024;
  opt.limits.kernel_buffer_bytes = 16 * 1024;
  SocketNetwork net(std::move(opt));
  net.start();

  ASSERT_TRUE(net.client().write_sync(Value::from_int64(1)).status.ok());
  ASSERT_FALSE(net.parked(0));

  // Process 2 stops draining its sockets: the classic slow reader. Writes
  // still complete (the n-t = 2 quorum is processes {0, 1}), but frames
  // toward 2 pile up in process 0's outbuf until it parks.
  net.set_read_paused(2, true);

  const std::string payload(4096, 'v');
  std::atomic<std::uint32_t> completed{0};
  std::uint32_t issued = 1;  // the warm-up write above
  while (!net.parked(0)) {
    ASSERT_LT(issued, 20'000u)
        << "writer never parked; completed=" << completed.load()
        << " peak_outbuf=" << net.backpressure_snapshot().peak_outbuf_bytes;
    net.client().write(Value::from_string(payload),
                       [&](const OpResult& r) {
                         ASSERT_TRUE(r.status.ok()) << r.status.message();
                         completed.fetch_add(1, std::memory_order_relaxed);
                       });
    ++issued;
    std::this_thread::sleep_for(100us);
  }
  EXPECT_TRUE(net.parked(0));

  // An op issued while parked is admitted but not started: its completion
  // stalls deterministically behind the backpressure.
  std::atomic<bool> stalled_done{false};
  net.client().write(Value::from_int64(777),
                     [&](const OpResult& r) {
                       ASSERT_TRUE(r.status.ok());
                       stalled_done.store(true, std::memory_order_release);
                     });
  ++issued;
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(stalled_done.load(std::memory_order_acquire))
      << "a parked process must not start new operations";

  // Unpause the reader: EPOLLOUT drains process 0's outbuf, admission
  // resumes, everything completes.
  net.set_read_paused(2, false);
  ASSERT_TRUE(eventually([&] {
    return stalled_done.load(std::memory_order_acquire) &&
           completed.load(std::memory_order_relaxed) == issued - 2;
  })) << "completed " << completed.load() << " of " << issued - 2;
  EXPECT_TRUE(eventually([&] { return !net.parked(0); }));

  const auto bp = net.backpressure_snapshot();
  EXPECT_GE(bp.park_events, 1u);
  EXPECT_GE(bp.resume_events, 1u);
  EXPECT_GE(bp.deferred_ops, 1u);
  EXPECT_GE(bp.peak_outbuf_bytes, 64u * 1024u);

  // No loss, no reorder: the slow reader catches up on the full FIFO
  // backlog, so a read at process 2 sees the last write (version == total
  // writes) — nothing parked was dropped.
  const OpResult at_slow = net.client().read_sync(2);
  ASSERT_TRUE(at_slow.status.ok());
  EXPECT_EQ(at_slow.version, static_cast<SeqNo>(issued));
  EXPECT_EQ(at_slow.value.to_int64(), 777);
  net.stop();
}

TEST(SocketBackpressureTest, LoopCountResolvesAndMultiLoopStaysHealthy) {
  SocketNetwork::Options opt;
  opt.cfg.n = 5;
  opt.cfg.t = 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.loops = 3;
  SocketNetwork net(std::move(opt));
  EXPECT_EQ(net.loop_count(), 3u);
  net.start();
  for (int k = 1; k <= 10; ++k) {
    ASSERT_TRUE(net.client().write_sync(Value::from_int64(k)).status.ok());
  }
  for (ProcessId pid = 0; pid < 5; ++pid) {
    EXPECT_EQ(net.client().read_sync(pid).value.to_int64(), 10);
  }
  const auto bp = net.backpressure_snapshot();
  EXPECT_EQ(bp.parked_now, 0u);
  net.stop();
}

}  // namespace
}  // namespace tbr
