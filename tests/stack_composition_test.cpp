// Full-stack composition: the layers are independent and stack freely.
//
//   KvStore -> MuxProcess -> ReliableLinkProcess -> TwoBitProcess
//                                -> lossy non-FIFO simulated channels
//
// Each layer was verified in isolation (kvstore_test, link_test,
// twobit_*); this suite checks the *product*: a sharded replicated store
// that stays correct and live while the network drops 10% of all frames —
// and the same stack with ABD underneath, since every layer is
// algorithm-agnostic.
#include <gtest/gtest.h>

#include "abd/specs.hpp"
#include "core/twobit_process.hpp"
#include "kvstore/kv_store.hpp"
#include "link/reliable_link.hpp"
#include "workload/algorithms.hpp"
#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

MuxProcess::SlotFactory linked_factory(Algorithm algo) {
  return [algo](const GroupConfig& cfg, ProcessId pid) {
    return std::make_unique<ReliableLinkProcess>(
        cfg, pid, make_register_process(algo, cfg, pid));
  };
}

class StackedStore : public testing::TestWithParam<Algorithm> {};

TEST_P(StackedStore, KvOverLinkOverLossyChannels) {
  KvStore::Options opt;
  opt.n = 5;
  opt.t = 2;
  opt.slots = 8;
  opt.seed = 31;
  opt.loss_rate = 0.10;  // the link layer underneath must absorb this
  opt.register_factory = linked_factory(GetParam());
  opt.initial = Value::from_string("?");
  KvStore store(std::move(opt));

  for (int k = 1; k <= 6; ++k) {
    store.client().put_sync("k" + std::to_string(k % 3), Value::from_int64(k));
  }
  EXPECT_EQ(store.client().get_sync("k0", 1).value.to_int64(), 6);
  EXPECT_EQ(store.client().get_sync("k1", 2).value.to_int64(), 4);
  EXPECT_EQ(store.client().get_sync("k2", 3).value.to_int64(), 5);
  EXPECT_GT(store.net().frames_lost(), 0u)
      << "the sweep must actually have exercised loss";
}

std::string algo_case_name(const testing::TestParamInfo<Algorithm>& param) {
  std::string name = algorithm_name(param.param);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Algorithms, StackedStore,
                         testing::Values(Algorithm::kTwoBit,
                                         Algorithm::kAbdUnbounded),
                         algo_case_name);

TEST(StackComposition, RegisterOverLinkUnderLossBothAlgorithms) {
  // register -> link -> 10% loss, for twobit AND abd-unbounded: the link
  // is protocol-agnostic and both protocols stay atomic and live.
  for (const Algorithm algo :
       {Algorithm::kTwoBit, Algorithm::kAbdUnbounded}) {
    SimWorkloadOptions opt;
    opt.cfg.n = 5;
    opt.cfg.t = 2;
    opt.cfg.writer = 0;
    opt.cfg.initial = Value::from_int64(0);
    opt.seed = 12345;
    opt.ops_per_process = 8;
    opt.loss_rate = 0.10;
    opt.process_factory = [algo](const GroupConfig& cfg, ProcessId pid) {
      return std::make_unique<ReliableLinkProcess>(
          cfg, pid, make_register_process(algo, cfg, pid));
    };
    const auto result = run_sim_workload(opt);
    ASSERT_TRUE(result.drained) << algorithm_name(algo);
    const auto check = result.check_atomicity(opt.cfg.initial);
    EXPECT_TRUE(check.ok) << algorithm_name(algo) << ": " << check.error;
    EXPECT_EQ(result.completed_by_correct, result.quota_of_correct)
        << algorithm_name(algo);
  }
}

TEST(StackComposition, DoubleDecorationLinkUnderMux) {
  // Mux of link-wrapped registers on ONE network: protocol frames travel
  // as link payloads inside mux envelopes; two layers of wrapping must
  // still deliver exactly-once per slot stream.
  KvStore::Options opt;
  opt.n = 3;
  opt.t = 1;
  opt.slots = 4;
  opt.register_factory = linked_factory(Algorithm::kTwoBit);
  KvStore store(std::move(opt));
  for (int round = 1; round <= 5; ++round) {
    for (int k = 0; k < 4; ++k) {
      store.client().put_sync("key" + std::to_string(k),
                Value::from_int64(round * 10 + k));
    }
  }
  for (int k = 0; k < 4; ++k) {
    const auto got = store.client().get_sync("key" + std::to_string(k), 1);
    EXPECT_EQ(got.value.to_int64(), 50 + k);
    EXPECT_EQ(got.version, 5);
  }
}

}  // namespace
}  // namespace tbr
