// Handler-level unit tests of the phased quorum engine (ABD family),
// injected through a mock context: phase sequencing, vote counting, stale
// response rejection, replica adoption, and echo fan-out.
#include <gtest/gtest.h>

#include "abd/phased_process.hpp"

namespace tbr {
namespace {

class MockContext final : public NetworkContext {
 public:
  MockContext(ProcessId self, std::uint32_t n) : self_(self), n_(n) {}

  void send(ProcessId to, const Message& msg) override {
    TBR_ENSURE(to < n_ && to != self_, "mock: bad destination");
    sent.push_back({to, msg});
  }
  ProcessId self() const override { return self_; }
  std::uint32_t process_count() const override { return n_; }
  Tick now() const override { return 0; }
  void schedule(Tick delay, std::function<void()> fn) override {
    timers.push_back({delay, std::move(fn)});
  }

  struct Sent {
    ProcessId to;
    Message msg;
  };
  std::vector<Sent> sent;
  std::vector<std::pair<Tick, std::function<void()>>> timers;
  std::vector<Sent> take() {
    auto out = std::move(sent);
    sent.clear();
    return out;
  }

 private:
  ProcessId self_;
  std::uint32_t n_;
};

GroupConfig cfg5() {
  GroupConfig cfg;
  cfg.n = 5;
  cfg.t = 2;
  cfg.writer = 0;
  cfg.initial = Value::from_int64(0);
  return cfg;
}

Message ack(SeqNo aux) {
  Message m;
  m.type = static_cast<std::uint8_t>(PhasedType::kPhaseAck);
  m.aux = aux;
  return m;
}

Message query_reply(SeqNo aux, SeqNo seq, std::int64_t v) {
  Message m;
  m.type = static_cast<std::uint8_t>(PhasedType::kQueryReply);
  m.aux = aux;
  m.seq = seq;
  m.has_value = true;
  m.value = Value::from_int64(v);
  return m;
}

// ---- write path ----------------------------------------------------------------

TEST(PhasedUnit, WriteBroadcastsDisseminationWithSeq) {
  MockContext net(0, 5);
  PhasedProcess writer(cfg5(), 0, abd_unbounded_spec());
  bool done = false;
  writer.start_write(net, Value::from_int64(9), [&] { done = true; });
  const auto sent = net.take();
  ASSERT_EQ(sent.size(), 4u);
  for (const auto& s : sent) {
    EXPECT_EQ(s.msg.type, static_cast<std::uint8_t>(PhasedType::kPhaseReq));
    EXPECT_EQ(s.msg.seq, 1);
    EXPECT_TRUE(s.msg.has_value);
  }
  EXPECT_FALSE(done);
  EXPECT_EQ(writer.replica_seq(), 1);  // the writer adopted its own value
}

TEST(PhasedUnit, WriteCompletesOnQuorumAcks) {
  MockContext net(0, 5);
  PhasedProcess writer(cfg5(), 0, abd_unbounded_spec());
  bool done = false;
  writer.start_write(net, Value::from_int64(9), [&] { done = true; });
  const auto aux = net.take()[0].msg.aux;
  writer.on_message(net, 1, ack(aux));
  EXPECT_FALSE(done);  // self + 1 = 2 < 3
  writer.on_message(net, 2, ack(aux));
  EXPECT_TRUE(done);
}

TEST(PhasedUnit, StaleAcksIgnored) {
  MockContext net(0, 5);
  PhasedProcess writer(cfg5(), 0, abd_unbounded_spec());
  bool done = false;
  writer.start_write(net, Value::from_int64(9), [&] { done = true; });
  const auto aux = net.take()[0].msg.aux;
  writer.on_message(net, 1, ack(aux - 1));   // wrong phase tag
  writer.on_message(net, 1, ack(aux + 64));  // wrong op tag
  EXPECT_FALSE(done);
  // Duplicate acks from the same process DO count twice in this engine?
  // No: each replica acks once per request; the engine trusts that. Two
  // distinct senders complete the quorum.
  writer.on_message(net, 1, ack(aux));
  writer.on_message(net, 2, ack(aux));
  EXPECT_TRUE(done);
}

// ---- read path -------------------------------------------------------------------

TEST(PhasedUnit, ReadQueriesThenWritesBack) {
  MockContext net(1, 5);
  PhasedProcess reader(cfg5(), 1, abd_unbounded_spec());
  Value out;
  SeqNo out_idx = -1;
  bool done = false;
  reader.start_read(net, [&](const Value& v, SeqNo idx) {
    out = v;
    out_idx = idx;
    done = true;
  });
  auto phase1 = net.take();
  ASSERT_EQ(phase1.size(), 4u);
  EXPECT_FALSE(phase1[0].msg.has_value);  // query carries nothing
  const auto aux1 = phase1[0].msg.aux;

  // Replies: p2 knows (3, 33), p3 knows (1, 11) — max wins.
  reader.on_message(net, 2, query_reply(aux1, 3, 33));
  reader.on_message(net, 3, query_reply(aux1, 1, 11));
  EXPECT_FALSE(done);  // phase 2 (write-back) must still reach a quorum

  auto phase2 = net.take();
  ASSERT_EQ(phase2.size(), 4u);
  EXPECT_TRUE(phase2[0].msg.has_value);
  EXPECT_EQ(phase2[0].msg.seq, 3);
  EXPECT_EQ(phase2[0].msg.value.to_int64(), 33);
  const auto aux2 = phase2[0].msg.aux;
  EXPECT_NE(aux1, aux2);

  reader.on_message(net, 2, ack(aux2));
  reader.on_message(net, 4, ack(aux2));
  ASSERT_TRUE(done);
  EXPECT_EQ(out.to_int64(), 33);
  EXPECT_EQ(out_idx, 3);
  EXPECT_EQ(reader.replica_seq(), 3);  // adopted what it read
}

TEST(PhasedUnit, LateQueryRepliesCannotChangeTheResult) {
  MockContext net(1, 5);
  PhasedProcess reader(cfg5(), 1, abd_unbounded_spec());
  SeqNo out_idx = -1;
  reader.start_read(net, [&](const Value&, SeqNo idx) { out_idx = idx; });
  const auto aux1 = net.take()[0].msg.aux;
  reader.on_message(net, 2, query_reply(aux1, 2, 22));
  reader.on_message(net, 3, query_reply(aux1, 1, 11));
  // A late, *fresher* phase-1 reply arrives during phase 2: it must adopt
  // into the replica but not corrupt the in-flight read's choice.
  reader.on_message(net, 4, query_reply(aux1, 9, 99));
  const auto phase2 = net.take();
  const auto aux2 = phase2[0].msg.aux;
  reader.on_message(net, 2, ack(aux2));
  reader.on_message(net, 3, ack(aux2));
  EXPECT_EQ(out_idx, 2);               // the quorum-time maximum
  EXPECT_EQ(reader.replica_seq(), 9);  // the replica still learned 9
}

// ---- replica behaviour ----------------------------------------------------------------

TEST(PhasedUnit, ReplicaAdoptsNewerOnly) {
  MockContext net(2, 5);
  PhasedProcess replica(cfg5(), 2, abd_unbounded_spec());
  Message m;
  m.type = static_cast<std::uint8_t>(PhasedType::kPhaseReq);
  m.aux = 100;
  m.seq = 5;
  m.has_value = true;
  m.value = Value::from_int64(55);
  replica.on_message(net, 0, m);
  EXPECT_EQ(replica.replica_seq(), 5);
  auto sent = net.take();
  ASSERT_EQ(sent.size(), 1u);  // ack only (no echo for unbounded spec)
  EXPECT_EQ(sent[0].msg.type, static_cast<std::uint8_t>(PhasedType::kPhaseAck));

  m.seq = 3;  // older dissemination arrives late
  m.value = Value::from_int64(33);
  replica.on_message(net, 3, m);
  EXPECT_EQ(replica.replica_seq(), 5);  // not regressed
  EXPECT_EQ(replica.replica_value().to_int64(), 55);
}

TEST(PhasedUnit, QueryAnsweredWithCurrentState) {
  MockContext net(2, 5);
  PhasedProcess replica(cfg5(), 2, abd_unbounded_spec());
  Message q;
  q.type = static_cast<std::uint8_t>(PhasedType::kPhaseReq);
  q.aux = 7;
  replica.on_message(net, 1, q);
  const auto sent = net.take();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].msg.type,
            static_cast<std::uint8_t>(PhasedType::kQueryReply));
  EXPECT_EQ(sent[0].msg.aux, 7);
  EXPECT_EQ(sent[0].msg.seq, 0);
  EXPECT_EQ(sent[0].msg.value.to_int64(), 0);  // the initial value
}

TEST(PhasedUnit, EchoSpecFansOutToEveryoneElse) {
  MockContext net(2, 5);
  PhasedProcess replica(cfg5(), 2, abd_bounded_spec());
  Message m;
  m.type = static_cast<std::uint8_t>(PhasedType::kPhaseReq);
  m.aux = 1;
  m.seq = 1;
  m.has_value = true;
  m.value = Value::from_int64(10);
  replica.on_message(net, 0, m);
  const auto sent = net.take();
  // 1 ack to the initiator + echoes to the n-2 other replicas.
  ASSERT_EQ(sent.size(), 1u + 3u);
  int echoes = 0;
  for (const auto& s : sent) {
    if (s.msg.type == static_cast<std::uint8_t>(PhasedType::kEcho)) {
      ++echoes;
      EXPECT_NE(s.to, 0u);  // never back to the initiator
    }
  }
  EXPECT_EQ(echoes, 3);
}

TEST(PhasedUnit, EchoRecipientsAdoptSilently) {
  MockContext net(3, 5);
  PhasedProcess replica(cfg5(), 3, abd_bounded_spec());
  Message e;
  e.type = static_cast<std::uint8_t>(PhasedType::kEcho);
  e.aux = 1;
  e.seq = 4;
  e.has_value = true;
  e.value = Value::from_int64(44);
  replica.on_message(net, 2, e);
  EXPECT_EQ(replica.replica_seq(), 4);
  EXPECT_TRUE(net.take().empty());  // no reply to gossip
}

// ---- contracts --------------------------------------------------------------------------

TEST(PhasedUnit, NonWriterCannotWrite) {
  MockContext net(1, 5);
  PhasedProcess p1(cfg5(), 1, abd_unbounded_spec());
  EXPECT_THROW(p1.start_write(net, Value::from_int64(1), [] {}),
               ContractViolation);
}

TEST(PhasedUnit, SequentialOpsEnforced) {
  MockContext net(1, 5);
  PhasedProcess p1(cfg5(), 1, abd_unbounded_spec());
  p1.start_read(net, [](const Value&, SeqNo) {});
  EXPECT_THROW(p1.start_read(net, [](const Value&, SeqNo) {}),
               ContractViolation);
}

TEST(PhasedUnit, CrashedReplicaRejectsDeliveries) {
  MockContext net(1, 5);
  PhasedProcess p1(cfg5(), 1, abd_unbounded_spec());
  p1.on_crash();
  EXPECT_THROW(p1.on_message(net, 0, ack(1)), ContractViolation);
}

}  // namespace
}  // namespace tbr
