// Client-API conformance: the SAME operations produce the SAME Status
// outcomes on every engine that hosts a client.
//
// The point of the unified client layer is that "what happened to my op"
// no longer depends on which runtime executed it: a crashed target is
// StatusCode::kCrashed everywhere, a stopped engine is kShutdown, an
// over-budget crash set is kLivenessLost, and a coalesced write reports
// absorbed = true with the surviving version — whether the op ran on the
// simulator, on real threads, on the flat sim-backed store, or on the
// sharded engine's workers.
//
// Register engines under test: SimRegisterGroup, ThreadNetwork,
//                              SocketNetwork (loopback TCP).
// KV engines under test:       KvStore (flat), ShardedKvStore.
//
// (The wall-clock runtimes — threaded and socket — intentionally have no
// liveness verdict: real time has no "the queue drained" moment, so an op
// against a dead quorum waits until its target crashes or the network
// stops. The liveness cases below therefore cover the three sim-backed
// engines.)

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "kvstore/kv_store.hpp"
#include "kvstore/sharded_store.hpp"
#include "runtime/thread_network.hpp"
#include "transport/socket_network.hpp"
#include "workload/sim_register_group.hpp"

namespace tbr {
namespace {

GroupConfig small_cfg(std::uint32_t n = 3, std::uint32_t t = 1) {
  GroupConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.writer = 0;
  cfg.initial = Value::from_string("v0");
  return cfg;
}

SimRegisterGroup make_sim_group(Algorithm algo = Algorithm::kTwoBit) {
  SimRegisterGroup::Options opt;
  opt.cfg = small_cfg();
  opt.algo = algo;
  return SimRegisterGroup(std::move(opt));
}

std::unique_ptr<ThreadNetwork> make_thread_net(
    Algorithm algo = Algorithm::kTwoBit) {
  ThreadNetwork::Options opt;
  opt.cfg = small_cfg();
  opt.algo = algo;
  opt.max_delay_us = 0;
  auto net = std::make_unique<ThreadNetwork>(opt);
  net->start();
  return net;
}

std::unique_ptr<SocketNetwork> make_socket_net(
    Algorithm algo = Algorithm::kTwoBit) {
  SocketNetwork::Options opt;
  opt.cfg = small_cfg();
  opt.algo = algo;
  auto net = std::make_unique<SocketNetwork>(std::move(opt));
  net->start();
  return net;
}

/// The shared register-client script: some writes and reads, then ops
/// against a crashed reader and a crashed writer. Returns the outcome
/// codes in script order so both engines can be compared verbatim.
struct RegisterScriptOutcome {
  std::vector<StatusCode> codes;
  std::string last_read_value;
  SeqNo last_read_version = -1;
};

RegisterScriptOutcome run_register_script(RegisterClient& client,
                                          const std::function<void(ProcessId)>& crash) {
  RegisterScriptOutcome out;
  out.codes.push_back(
      client.write_sync(Value::from_string("a")).status.code());
  out.codes.push_back(
      client.write_sync(Value::from_string("b")).status.code());
  const OpResult read = client.read_sync(1);
  out.codes.push_back(read.status.code());
  out.last_read_value = read.value.to_string();
  out.last_read_version = read.version;

  crash(2);  // a reader replica
  out.codes.push_back(client.read_sync(2).status.code());   // crashed reader
  out.codes.push_back(client.read_sync(1).status.code());   // live reader
  crash(0);  // the writer
  out.codes.push_back(
      client.write_sync(Value::from_string("c")).status.code());
  return out;
}

TEST(ClientConformance, RegisterScriptMatchesAcrossAllRegisterEngines) {
  auto group = make_sim_group();
  const auto sim = run_register_script(
      group.client(), [&group](ProcessId pid) { group.crash(pid); });

  auto net = make_thread_net();
  const auto threaded = run_register_script(
      net->client(), [&net](ProcessId pid) { net->crash(pid); });

  // Socket crash markers queue FIFO behind the same node's pending
  // commands, exactly like the threaded mailbox, so no settling is needed
  // between crash and the next op against that node.
  auto sock = make_socket_net();
  const auto socket = run_register_script(
      sock->client(), [&sock](ProcessId pid) { sock->crash(pid); });

  ASSERT_EQ(sim.codes.size(), threaded.codes.size());
  EXPECT_EQ(sim.codes, threaded.codes);
  ASSERT_EQ(sim.codes.size(), socket.codes.size());
  EXPECT_EQ(sim.codes, socket.codes);
  EXPECT_EQ(sim.last_read_value, "b");
  EXPECT_EQ(threaded.last_read_value, "b");
  EXPECT_EQ(socket.last_read_value, "b");
  EXPECT_EQ(sim.last_read_version, 2);
  EXPECT_EQ(threaded.last_read_version, 2);
  EXPECT_EQ(socket.last_read_version, 2);

  const std::vector<StatusCode> expected{
      StatusCode::kOk,      StatusCode::kOk,      StatusCode::kOk,
      StatusCode::kCrashed, StatusCode::kOk,      StatusCode::kCrashed};
  EXPECT_EQ(sim.codes, expected);
}

TEST(ClientConformance, FastReadEnginesMatchRegisterScriptVerbatim) {
  // The SAME crash script, byte for byte, against both fast-path read
  // engines (src/fastread/) on all three register runtimes: new protocol,
  // same Status surface.
  const std::vector<StatusCode> expected{
      StatusCode::kOk,      StatusCode::kOk,      StatusCode::kOk,
      StatusCode::kCrashed, StatusCode::kOk,      StatusCode::kCrashed};
  for (const auto algo : fastread_algorithms()) {
    SCOPED_TRACE(algorithm_name(algo));

    auto group = make_sim_group(algo);
    const auto sim = run_register_script(
        group.client(), [&group](ProcessId pid) { group.crash(pid); });
    EXPECT_EQ(sim.codes, expected);
    EXPECT_EQ(sim.last_read_value, "b");
    EXPECT_EQ(sim.last_read_version, 2);

    auto net = make_thread_net(algo);
    const auto threaded = run_register_script(
        net->client(), [&net](ProcessId pid) { net->crash(pid); });
    EXPECT_EQ(threaded.codes, expected);
    EXPECT_EQ(threaded.last_read_value, "b");
    EXPECT_EQ(threaded.last_read_version, 2);

    auto sock = make_socket_net(algo);
    const auto socket = run_register_script(
        sock->client(), [&sock](ProcessId pid) { sock->crash(pid); });
    EXPECT_EQ(socket.codes, expected);
    EXPECT_EQ(socket.last_read_value, "b");
    EXPECT_EQ(socket.last_read_version, 2);
  }
}

TEST(ClientConformance, FastReadEnginesCallbackShutdownAndLiveness) {
  for (const auto algo : fastread_algorithms()) {
    SCOPED_TRACE(algorithm_name(algo));
    {
      // Callback mode auto-recycles and reports kOk.
      auto group = make_sim_group(algo);
      int completions = 0;
      StatusCode seen = StatusCode::kShutdown;
      const Ticket t = group.client().write(Value::from_string("cb"),
                                            [&](const OpResult& r) {
                                              ++completions;
                                              seen = r.status.code();
                                            });
      EXPECT_FALSE(t.valid()) << "callback mode returns an empty ticket";
      group.settle();
      EXPECT_EQ(completions, 1);
      EXPECT_EQ(seen, StatusCode::kOk);
    }
    {
      // Stopped engine → kShutdown, uniformly.
      auto net = make_thread_net(algo);
      (void)net->client().write_sync(Value::from_int64(1));
      net->stop();
      EXPECT_EQ(net->client().write_sync(Value::from_int64(2)).status.code(),
                StatusCode::kShutdown);
      EXPECT_EQ(net->client().read_sync(1).status.code(),
                StatusCode::kShutdown);
    }
    {
      // Over-budget crash set → kLivenessLost on the sim engine.
      auto group = make_sim_group(algo);
      group.crash(1);
      group.crash(2);
      EXPECT_EQ(group.client().write_sync(Value::from_int64(9)).status.code(),
                StatusCode::kLivenessLost);
    }
    {
      // try_result polls without blocking.
      auto group = make_sim_group(algo);
      const Ticket t = group.client().write(Value::from_int64(5));
      OpResult out;
      EXPECT_FALSE(group.client().try_result(t, out));
      group.settle();
      ASSERT_TRUE(group.client().try_result(t, out));
      EXPECT_TRUE(out.status.ok());
    }
  }
}

TEST(ClientConformance, FastReadEnginesPipelineBatchesThroughChains) {
  // The submit(span) pipeline script from RegisterBatchPipelinesThroughChains
  // on the fast-path engines: monotone read versions, final version 3.
  auto run = [](RegisterClient& client) {
    std::array<RegisterOp, 6> ops;
    for (int k = 0; k < 3; ++k) {
      ops[2 * k].kind = OpKind::kWrite;
      ops[2 * k].value = Value::from_int64(k + 1);
      ops[2 * k + 1].kind = OpKind::kRead;
      ops[2 * k + 1].reader = 1;
    }
    std::array<Ticket, 6> tickets;
    EXPECT_EQ(client.submit(ops, tickets.data()), 6u);
    SeqNo last_version = -1;
    for (int k = 0; k < 6; ++k) {
      const OpResult r = client.wait(tickets[k]);
      EXPECT_TRUE(r.status.ok()) << r.status.message();
      if (k % 2 == 1) {
        EXPECT_GE(r.version, last_version);
        last_version = r.version;
      }
    }
    const OpResult after = client.read_sync(2);
    EXPECT_TRUE(after.status.ok());
    EXPECT_EQ(after.version, 3) << "all three writes completed before this";
    EXPECT_EQ(after.value.to_int64(), 3);
  };
  for (const auto algo : fastread_algorithms()) {
    SCOPED_TRACE(algorithm_name(algo));
    auto group = make_sim_group(algo);
    run(group.client());
    auto net = make_thread_net(algo);
    run(net->client());
  }
}

TEST(ClientConformance, RegisterBatchPipelinesThroughChains) {
  // submit(span) on a register client serializes per process via the
  // client chains: every op completes, read versions are monotonic along
  // the reader's chain (writes and reads live on different processes, so
  // there is no cross-chain order), and once everything is waited a fresh
  // read observes the last write.
  auto run = [](RegisterClient& client) {
    std::array<RegisterOp, 6> ops;
    for (int k = 0; k < 3; ++k) {
      ops[2 * k].kind = OpKind::kWrite;
      ops[2 * k].value = Value::from_int64(k + 1);
      ops[2 * k + 1].kind = OpKind::kRead;
      ops[2 * k + 1].reader = 1;
    }
    std::array<Ticket, 6> tickets;
    EXPECT_EQ(client.submit(ops, tickets.data()), 6u);
    SeqNo last_version = -1;
    for (int k = 0; k < 6; ++k) {
      const OpResult r = client.wait(tickets[k]);
      EXPECT_TRUE(r.status.ok()) << r.status.message();
      if (k % 2 == 1) {
        EXPECT_GE(r.version, last_version);
        last_version = r.version;
      }
    }
    const OpResult after = client.read_sync(2);
    EXPECT_TRUE(after.status.ok());
    EXPECT_EQ(after.version, 3) << "all three writes completed before this";
    EXPECT_EQ(after.value.to_int64(), 3);
  };
  auto group = make_sim_group();
  run(group.client());
  auto net = make_thread_net();
  run(net->client());
  auto sock = make_socket_net();
  run(sock->client());
}

TEST(ClientConformance, CallbackModeAutoRecyclesAndReportsStatus) {
  auto run = [](RegisterClient& client, auto drive) {
    int completions = 0;
    StatusCode seen = StatusCode::kOk;
    const Ticket t = client.write(Value::from_string("cb"),
                                  [&](const OpResult& r) {
                                    ++completions;
                                    seen = r.status.code();
                                  });
    EXPECT_FALSE(t.valid()) << "callback mode returns an empty ticket";
    drive();
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(seen, StatusCode::kOk);
  };
  auto group = make_sim_group();
  run(group.client(), [&group] { group.settle(); });
  auto net = make_thread_net();
  // Threaded: a blocking read on the same client orders after the write's
  // completion on the writer chain? No — different processes. Use a
  // follow-up write: chained behind the callback write on the writer.
  run(net->client(), [&net] {
    (void)net->client().write_sync(Value::from_string("fence"));
  });
  // Socket: the same fence discipline — the chain serializes the callback
  // write and the fence write on the writer's loop thread.
  auto sock = make_socket_net();
  run(sock->client(), [&sock] {
    (void)sock->client().write_sync(Value::from_string("fence"));
  });
}

TEST(ClientConformance, ThreadedShutdownReportsShutdownStatus) {
  auto net = make_thread_net();
  (void)net->client().write_sync(Value::from_int64(1));
  net->stop();
  const OpResult w = net->client().write_sync(Value::from_int64(2));
  EXPECT_EQ(w.status.code(), StatusCode::kShutdown);
  const OpResult r = net->client().read_sync(1);
  EXPECT_EQ(r.status.code(), StatusCode::kShutdown);
}

TEST(ClientConformance, SocketShutdownReportsShutdownStatus) {
  auto net = make_socket_net();
  (void)net->client().write_sync(Value::from_int64(1));
  net->stop();
  const OpResult w = net->client().write_sync(Value::from_int64(2));
  EXPECT_EQ(w.status.code(), StatusCode::kShutdown);
  const OpResult r = net->client().read_sync(1);
  EXPECT_EQ(r.status.code(), StatusCode::kShutdown);
}

TEST(ClientConformance, ShardedShutdownReportsShutdownStatus) {
  ShardedKvStore::Options opt;
  opt.shards = 2;
  opt.n = 3;
  opt.t = 1;
  ShardedKvStore store(std::move(opt));
  EXPECT_TRUE(store.client().put_sync("k", Value::from_int64(1)).status.ok());
  store.stop();
  EXPECT_EQ(store.client().put_sync("k", Value::from_int64(2)).status.code(),
            StatusCode::kShutdown);
  EXPECT_EQ(store.client().get_sync("k").status.code(),
            StatusCode::kShutdown);
}

// ---- the kv script across the flat and sharded stores ------------------------

KvStore make_flat_store() {
  KvStore::Options opt;
  opt.n = 3;
  opt.t = 1;
  opt.slots = 8;
  opt.initial = Value::from_string("unset");
  return KvStore(std::move(opt));
}

std::unique_ptr<ShardedKvStore> make_sharded_store(std::size_t min_batch = 0) {
  ShardedKvStore::Options opt;
  opt.shards = 2;
  opt.n = 3;
  opt.t = 1;
  opt.slots_per_shard = 8;
  opt.initial = Value::from_string("unset");
  opt.min_batch = min_batch;
  opt.min_batch_wait = std::chrono::microseconds(200'000);
  return std::make_unique<ShardedKvStore>(std::move(opt));
}

TEST(ClientConformance, KvHappyPathMatchesAcrossFlatAndSharded) {
  // Keys hashing into one slot share that slot's register (per-slot
  // histories, by design), so the never-written probe must live in a
  // different slot than "alpha" on each store.
  auto script = [](KvClient& client, std::string_view miss_key) {
    std::vector<StatusCode> codes;
    codes.push_back(
        client.put_sync("alpha", Value::from_string("1")).status.code());
    codes.push_back(
        client.put_sync("alpha", Value::from_string("2")).status.code());
    const OpResult g = client.get_sync("alpha");
    codes.push_back(g.status.code());
    EXPECT_EQ(g.value.to_string(), "2");
    EXPECT_EQ(g.version, 2);
    const OpResult miss = client.get_sync(miss_key);
    codes.push_back(miss.status.code());
    EXPECT_EQ(miss.value.to_string(), "unset");
    EXPECT_EQ(miss.version, 0);
    return codes;
  };
  auto pick_fresh = [](const std::function<bool(const std::string&)>& collides) {
    for (int i = 0;; ++i) {
      std::string candidate = "never-" + std::to_string(i);
      if (!collides(candidate)) return candidate;
    }
  };

  auto flat = make_flat_store();
  const std::string flat_miss = pick_fresh([&flat](const std::string& k) {
    return flat.slot_of(k) == flat.slot_of("alpha");
  });
  auto sharded = make_sharded_store();
  const auto alpha_at = sharded->router().place("alpha");
  const std::string sharded_miss =
      pick_fresh([&sharded, &alpha_at](const std::string& k) {
        const auto at = sharded->router().place(k);
        return at.shard == alpha_at.shard && at.slot == alpha_at.slot;
      });

  const auto flat_codes = script(flat.client(), flat_miss);
  const auto sharded_codes = script(sharded->client(), sharded_miss);
  EXPECT_EQ(flat_codes, sharded_codes);
  for (const StatusCode code : flat_codes) {
    EXPECT_EQ(code, StatusCode::kOk);
  }
}

TEST(ClientConformance, AbsorbedWritesMatchAcrossFlatAndSharded) {
  // Three puts to one key submitted into a single window: last-write-wins
  // coalescing absorbs the first two, everyone reports the surviving
  // version, and a read observes only the survivor — identically on the
  // flat store (deferred window) and the sharded store (min_batch window).
  auto script = [](KvClient& client) {
    std::array<Ticket, 3> tickets;
    for (int k = 0; k < 3; ++k) {
      tickets[k] =
          client.put("hot", Value::from_string("v" + std::to_string(k)));
    }
    std::array<OpResult, 3> results;
    for (int k = 0; k < 3; ++k) results[k] = client.wait(tickets[k]);
    for (int k = 0; k < 3; ++k) {
      EXPECT_TRUE(results[k].status.ok()) << results[k].status.message();
      EXPECT_EQ(results[k].version, results[2].version)
          << "a coalesced run lands as one protocol write";
    }
    EXPECT_TRUE(results[0].absorbed);
    EXPECT_TRUE(results[1].absorbed);
    EXPECT_FALSE(results[2].absorbed);
    const OpResult g = client.get_sync("hot");
    EXPECT_EQ(g.value.to_string(), "v2");
  };
  auto flat = make_flat_store();
  script(flat.client());
  auto sharded = make_sharded_store(/*min_batch=*/3);
  script(sharded->client());
}

TEST(ClientConformance, CrashedHomeAndReaderMatchAcrossFlatAndSharded) {
  auto script = [](KvClient& client, const std::function<void(ProcessId)>& crash_node,
                   ProcessId home) {
    std::vector<StatusCode> codes;
    codes.push_back(
        client.put_sync("key", Value::from_string("x")).status.code());
    crash_node(home);
    codes.push_back(
        client.put_sync("key", Value::from_string("y")).status.code());
    codes.push_back(client.get_sync("key", home).status.code());
    codes.push_back(client.get_sync("key").status.code());  // rotates away
    return codes;
  };
  const std::vector<StatusCode> expected{
      StatusCode::kOk, StatusCode::kCrashed, StatusCode::kCrashed,
      StatusCode::kOk};

  auto flat = make_flat_store();
  const ProcessId flat_home = flat.home_node("key");
  EXPECT_EQ(script(flat.client(),
                   [&flat](ProcessId pid) { flat.crash(pid); }, flat_home),
            expected);

  auto sharded = make_sharded_store();
  const auto at = sharded->router().place("key");
  EXPECT_EQ(script(sharded->client(),
                   [&sharded, &at](ProcessId pid) {
                     sharded->crash(at.shard, pid);
                     sharded->drain();  // crash applies between windows
                   },
                   at.home),
            expected);
}

TEST(ClientConformance, LivenessLossMatchesAcrossSimEngines) {
  // Crash beyond the budget (t = 1, two crashes): the sim-backed engines
  // all report kLivenessLost instead of hanging or aborting.
  auto group = make_sim_group();
  group.crash(1);
  group.crash(2);
  const OpResult reg = group.client().write_sync(Value::from_int64(9));
  EXPECT_EQ(reg.status.code(), StatusCode::kLivenessLost);

  auto flat = make_flat_store();
  flat.crash(0);
  flat.crash(1);
  // Read at the surviving replica: no quorum can answer.
  const OpResult kv = flat.client().get_sync("key", 2);
  EXPECT_EQ(kv.status.code(), StatusCode::kLivenessLost);

  auto sharded = make_sharded_store();
  const auto at = sharded->router().place("key");
  sharded->crash(at.shard, (at.home + 1) % 3);
  sharded->crash(at.shard, (at.home + 2) % 3);
  sharded->drain();
  const OpResult sh = sharded->client().put_sync("key", Value::from_int64(1));
  EXPECT_EQ(sh.status.code(), StatusCode::kLivenessLost);
  // The shard latches: later ops fail fast with the same code.
  const OpResult later = sharded->client().get_sync("key");
  EXPECT_EQ(later.status.code(), StatusCode::kLivenessLost);
}

TEST(ClientConformance, TryResultPollsWithoutBlocking) {
  auto group = make_sim_group();
  RegisterClient& client = group.client();
  const Ticket t = client.write(Value::from_int64(5));
  OpResult out;
  EXPECT_FALSE(client.try_result(t, out)) << "nothing driven yet";
  group.settle();  // drive the simulator to completion
  ASSERT_TRUE(client.try_result(t, out));
  EXPECT_TRUE(out.status.ok());
}

}  // namespace
}  // namespace tbr
