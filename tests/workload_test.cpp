// Tests of the workload driver itself: determinism, quotas, crash plumbing,
// histogram collection, and the SimRegisterGroup facade.
#include <gtest/gtest.h>

#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

SimWorkloadOptions base_options(std::uint64_t seed = 1) {
  SimWorkloadOptions opt;
  opt.cfg.n = 5;
  opt.cfg.t = 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.seed = seed;
  opt.ops_per_process = 8;
  opt.think_time_max = 300;
  return opt;
}

TEST(SimWorkloadTest, CompletesAllOpsWithoutCrashes) {
  const auto result = run_sim_workload(base_options());
  EXPECT_TRUE(result.drained);
  EXPECT_EQ(result.completed_by_correct, result.quota_of_correct);
  EXPECT_EQ(result.quota_of_correct, 5u * 8u);
  EXPECT_EQ(result.ops.size(), 5u * 8u);
  EXPECT_EQ(result.crashes, 0u);
}

TEST(SimWorkloadTest, DeterministicForSameSeed) {
  const auto a = run_sim_workload(base_options(42));
  const auto b = run_sim_workload(base_options(42));
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.stats.total_sent(), b.stats.total_sent());
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].start.tick, b.ops[i].start.tick);
    EXPECT_EQ(a.ops[i].index, b.ops[i].index);
  }
}

TEST(SimWorkloadTest, DifferentSeedsDiffer) {
  const auto a = run_sim_workload(base_options(1));
  const auto b = run_sim_workload(base_options(2));
  EXPECT_NE(a.duration, b.duration);
}

TEST(SimWorkloadTest, WriterWritesReadersRead) {
  const auto result = run_sim_workload(base_options());
  for (const auto& op : result.ops) {
    if (op.kind == OpRecord::Kind::kWrite) {
      EXPECT_EQ(op.proc, 0u);
    } else {
      EXPECT_NE(op.proc, 0u);  // writer_read_fraction = 0 here
    }
  }
}

TEST(SimWorkloadTest, WriterReadFractionMixesOps) {
  auto opt = base_options();
  opt.writer_read_fraction = 0.5;
  opt.ops_per_process = 30;
  const auto result = run_sim_workload(opt);
  int writer_reads = 0;
  int writer_writes = 0;
  for (const auto& op : result.ops) {
    if (op.proc != 0) continue;
    (op.kind == OpRecord::Kind::kRead ? writer_reads : writer_writes)++;
  }
  EXPECT_GT(writer_reads, 0);
  EXPECT_GT(writer_writes, 0);
}

TEST(SimWorkloadTest, CrashesReduceCompletions) {
  auto opt = base_options();
  opt.crashes = 2;
  opt.crash_horizon = 5'000;
  opt.ops_per_process = 10;
  const auto result = run_sim_workload(opt);
  EXPECT_TRUE(result.drained);
  EXPECT_EQ(result.crashes, 2u);
  EXPECT_EQ(result.quota_of_correct, 3u * 10u);
  EXPECT_EQ(result.completed_by_correct, result.quota_of_correct)
      << "correct processes must still finish everything";
}

TEST(SimWorkloadTest, RejectsOverBudgetCrashes) {
  auto opt = base_options();
  opt.crashes = 3;  // t = 2
  EXPECT_THROW((void)run_sim_workload(opt), ContractViolation);
}

TEST(SimWorkloadTest, LatencyHistogramsFilled) {
  const auto result = run_sim_workload(base_options());
  EXPECT_EQ(result.write_latency.count(), 8u);
  EXPECT_EQ(result.read_latency.count(), 4u * 8u);
  EXPECT_GT(result.write_latency.min(), 0);
}

TEST(SimWorkloadTest, InvariantChecksOnlyForTwoBit) {
  auto opt = base_options();
  opt.algo = Algorithm::kAbdUnbounded;
  opt.invariant_checks = true;
  EXPECT_THROW((void)run_sim_workload(opt), ContractViolation);
}

TEST(SimWorkloadTest, WorksForEveryAlgorithm) {
  for (const auto algo : all_algorithms()) {
    auto opt = base_options();
    opt.algo = algo;
    opt.ops_per_process = 4;
    const auto result = run_sim_workload(opt);
    EXPECT_TRUE(result.drained) << algorithm_name(algo);
    EXPECT_EQ(result.completed_by_correct, result.quota_of_correct)
        << algorithm_name(algo);
    const auto check = result.check_atomicity(opt.cfg.initial);
    EXPECT_TRUE(check.ok) << algorithm_name(algo) << ": " << check.error;
  }
}

TEST(SimWorkloadTest, ZeroOpsDrainsImmediately) {
  auto opt = base_options();
  opt.ops_per_process = 0;
  const auto result = run_sim_workload(opt);
  EXPECT_TRUE(result.drained);
  EXPECT_TRUE(result.ops.empty());
  EXPECT_EQ(result.stats.total_sent(), 0u);
}

// ---- SimRegisterGroup facade edge cases ------------------------------------------

TEST(SimRegisterGroupTest, WriteOnCrashedWriterReportsCrashed) {
  SimRegisterGroup::Options opt;
  opt.cfg.n = 3;
  opt.cfg.t = 1;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  SimRegisterGroup group(std::move(opt));
  group.crash(0);
  EXPECT_EQ(group.client().write_sync(Value::from_int64(1)).status.code(),
            StatusCode::kCrashed);
}

TEST(SimRegisterGroupTest, ReadOnCrashedReaderReportsCrashed) {
  SimRegisterGroup::Options opt;
  opt.cfg.n = 3;
  opt.cfg.t = 1;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  SimRegisterGroup group(std::move(opt));
  group.crash(2);
  EXPECT_EQ(group.client().read_sync(2).status.code(), StatusCode::kCrashed);
}

TEST(SimRegisterGroupTest, WriteBlockedByMajorityCrashFailsLoudly) {
  // With more than t crashes the quorum is unreachable: the write must
  // fail by Status, not hang (the sim drains and reports liveness loss).
  SimRegisterGroup::Options opt;
  opt.cfg.n = 3;
  opt.cfg.t = 1;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  SimRegisterGroup group(std::move(opt));
  group.crash(1);
  group.crash(2);  // beyond t: model violated on purpose
  EXPECT_EQ(group.client().write_sync(Value::from_int64(1)).status.code(),
            StatusCode::kLivenessLost);
}

}  // namespace
}  // namespace tbr
