// BoundedHistoryLog unit tests: the checkpoint-record contract, acked-prefix
// reclamation, crash-rejoin resets, and the flat-allocation guarantee the
// steady-state memory gates depend on.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "core/history_log.hpp"

namespace tbr {
namespace {

Value v(std::int64_t x) { return Value::from_int64(x); }

TEST(HistoryLog, StartsAsGenesisCheckpoint) {
  BoundedHistoryLog log(v(7));
  EXPECT_EQ(log.base(), 0);
  EXPECT_EQ(log.head(), 0);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_TRUE(log.has(0));
  EXPECT_FALSE(log.has(1));
  EXPECT_EQ(log.at(0).to_int64(), 7);
  EXPECT_EQ(log.checkpoint_value().to_int64(), 7);
}

TEST(HistoryLog, AppendExtendsTheRetainedRange) {
  BoundedHistoryLog log(v(0));
  for (std::int64_t k = 1; k <= 40; ++k) log.append(v(k));
  EXPECT_EQ(log.base(), 0);
  EXPECT_EQ(log.head(), 40);
  EXPECT_EQ(log.size(), 41u);
  for (SeqNo idx = 0; idx <= 40; ++idx) {
    ASSERT_TRUE(log.has(idx));
    EXPECT_EQ(log.at(idx).to_int64(), idx);
  }
  EXPECT_FALSE(log.has(41));
}

TEST(HistoryLog, AdvanceCheckpointReclaimsThePrefix) {
  BoundedHistoryLog log(v(0));
  for (std::int64_t k = 1; k <= 20; ++k) log.append(v(k));

  EXPECT_EQ(log.advance_checkpoint(15), 15u);
  EXPECT_EQ(log.base(), 15);
  EXPECT_EQ(log.head(), 20);
  EXPECT_EQ(log.size(), 6u);
  // The checkpoint record supersedes the reclaimed prefix: entry 15 is now
  // the (index, value) pair a rejoiner would bootstrap from.
  EXPECT_EQ(log.checkpoint_value().to_int64(), 15);
  EXPECT_FALSE(log.has(14));
  for (SeqNo idx = 15; idx <= 20; ++idx) {
    EXPECT_EQ(log.at(idx).to_int64(), idx);
  }

  // Idempotent at the current base; can go all the way to the head.
  EXPECT_EQ(log.advance_checkpoint(15), 0u);
  EXPECT_EQ(log.advance_checkpoint(20), 5u);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.checkpoint_value().to_int64(), 20);
}

TEST(HistoryLog, AdvanceCheckpointEnforcesItsBounds) {
  BoundedHistoryLog log(v(0));
  for (std::int64_t k = 1; k <= 5; ++k) log.append(v(k));
  ASSERT_EQ(log.advance_checkpoint(3), 3u);
  EXPECT_THROW((void)log.advance_checkpoint(2), ContractViolation);  // < base
  EXPECT_THROW((void)log.advance_checkpoint(6), ContractViolation);  // > head
  EXPECT_THROW((void)log.at(2), ContractViolation);                  // evicted
}

TEST(HistoryLog, EvictFrontDropsExactlyOneEntry) {
  BoundedHistoryLog log(v(0));
  for (std::int64_t k = 1; k <= 3; ++k) log.append(v(k));
  log.evict_front();
  log.evict_front();
  EXPECT_EQ(log.base(), 2);
  EXPECT_EQ(log.head(), 3);
  EXPECT_EQ(log.size(), 2u);
}

TEST(HistoryLog, ResetToCheckpointRestartsTheLog) {
  BoundedHistoryLog log(v(0));
  for (std::int64_t k = 1; k <= 10; ++k) log.append(v(k));

  log.reset_to_checkpoint(100, v(100));
  EXPECT_EQ(log.base(), 100);
  EXPECT_EQ(log.head(), 100);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_FALSE(log.has(99));
  EXPECT_EQ(log.checkpoint_value().to_int64(), 100);

  // Appends continue from the adopted index.
  log.append(v(101));
  EXPECT_EQ(log.head(), 101);
  EXPECT_EQ(log.at(101).to_int64(), 101);
}

TEST(HistoryLog, SlidingWindowRecyclesSegmentsWithoutGrowth) {
  // A bounded-mode steady state: append one, reclaim down to a fixed lag.
  // After warmup, both the segment count and the accounted bytes must be
  // exactly flat — this is the property the CI memory gates lean on.
  constexpr SeqNo kLag = 8;
  BoundedHistoryLog log(v(0));
  std::size_t warm_segments = 0;
  std::uint64_t warm_bytes = 0;
  for (std::int64_t k = 1; k <= 2000; ++k) {
    log.append(v(k));
    if (log.head() - kLag > log.base()) {
      (void)log.advance_checkpoint(log.head() - kLag);
    }
    if (k == 200) {
      warm_segments = log.allocated_segments();
      warm_bytes = log.memory_bytes();
    }
    if (k > 200) {
      EXPECT_EQ(log.allocated_segments(), warm_segments) << "at append " << k;
      EXPECT_EQ(log.memory_bytes(), warm_bytes) << "at append " << k;
    }
  }
  EXPECT_EQ(log.size(), static_cast<std::size_t>(kLag) + 1u);
  EXPECT_EQ(log.head(), 2000);
}

}  // namespace
}  // namespace tbr
