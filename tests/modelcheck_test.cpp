// Model checker (src/modelcheck): run mechanics, bounded-exhaustive
// verification of the two-bit register on small instances, detection power
// against the ablated variants (the explorer must FIND the bugs the paper's
// waits prevent), scripted-adversary reproduction of the Claim-3 window,
// and the liveness/invariant verdict paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "checker/swmr_checker.hpp"
#include "core/twobit_codec.hpp"
#include "core/twobit_process.hpp"
#include "modelcheck/explorer.hpp"

namespace tbr {
namespace {

Scenario base(std::uint32_t n, std::uint32_t t) {
  Scenario s;
  s.cfg.n = n;
  s.cfg.t = t;
  s.cfg.writer = 0;
  s.cfg.initial = Value::from_int64(0);
  return s;
}

McOp write_op(ProcessId proc, std::int64_t v, int after = -1) {
  return McOp{McOp::Kind::kWrite, proc, Value::from_int64(v), after};
}

McOp read_op(ProcessId proc, int after = -1) {
  return McOp{McOp::Kind::kRead, proc, Value(), after};
}

// ---- McRun mechanics ---------------------------------------------------------

TEST(McRun, InitialFrontierIsOpStartsOnly) {
  auto s = base(3, 1);
  s.ops = {write_op(0, 1), read_op(1)};
  McRun run(s);
  const auto choices = run.enabled();
  ASSERT_EQ(choices.size(), 2u);  // no frames yet, both ops startable
  EXPECT_EQ(choices[0].kind, McRun::Choice::Kind::kStartOp);
  EXPECT_EQ(choices[1].kind, McRun::Choice::Kind::kStartOp);
}

TEST(McRun, WriteStartEmitsFramesToAllOthers) {
  auto s = base(3, 1);
  s.ops = {write_op(0, 1)};
  McRun run(s);
  run.apply_enabled(0);  // start the write
  EXPECT_EQ(run.in_flight_count(), 2u);  // WRITE(v1) to p1 and p2
  for (const auto& f : run.in_flight_frames()) {
    EXPECT_EQ(f.from, 0u);
    EXPECT_LE(f.type, 1u);
  }
}

TEST(McRun, PerProcessProgramOrderGatesOps) {
  auto s = base(3, 1);
  s.ops = {read_op(1), read_op(1)};  // same process: issue in order
  McRun run(s);
  auto choices = run.enabled();
  ASSERT_EQ(choices.size(), 1u) << "second op must wait for the first";
  EXPECT_EQ(choices[0].arg, 0u);
}

TEST(McRun, AfterDependencyGatesAcrossProcesses) {
  auto s = base(3, 1);
  s.ops = {write_op(0, 1), read_op(1, /*after=*/0)};
  McRun run(s);
  auto choices = run.enabled();
  ASSERT_EQ(choices.size(), 1u) << "read must wait for the write to finish";
  EXPECT_EQ(choices[0].kind, McRun::Choice::Kind::kStartOp);
  EXPECT_EQ(choices[0].arg, 0u);
}

TEST(McRun, CrashRemovesDeadLetters) {
  auto s = base(3, 1);
  s.ops = {write_op(0, 1)};
  s.max_crashes = 1;
  s.crash_candidates = {1};
  McRun run(s);
  run.apply_enabled(0);  // start write: frames to p1, p2 + crash choice
  const auto choices = run.enabled();
  ASSERT_EQ(choices.size(), 3u);
  EXPECT_EQ(choices[2].kind, McRun::Choice::Kind::kCrash);
  run.apply_enabled(2);  // crash p1
  EXPECT_EQ(run.crashes(), 1u);
  EXPECT_EQ(run.in_flight_count(), 1u) << "frame to the corpse burned";
  EXPECT_EQ(run.in_flight_frames()[0].to, 2u);
}

TEST(McRun, ScenarioValidationRejectsNonsense) {
  auto s = base(3, 1);
  s.ops = {write_op(0, 1)};
  s.ops[0].proc = 1;  // non-writer writing
  EXPECT_THROW(McRun run(s), ContractViolation);

  auto s2 = base(3, 1);
  s2.ops = {read_op(1, /*after=*/0)};  // self-dependency
  EXPECT_THROW(McRun run2(s2), ContractViolation);

  auto s3 = base(3, 1);
  s3.ops = {write_op(0, 1)};
  s3.max_crashes = 2;  // beyond t
  EXPECT_THROW(McRun run3(s3), ContractViolation);
}

// ---- bounded-exhaustive verification -------------------------------------------

TEST(McExhaustive, SingleWriteAllSchedules) {
  auto s = base(3, 1);
  s.ops = {write_op(0, 1)};
  const auto result = explore(s);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.ok()) << result.violations[0].detail;
  // Theorem 2's write frame count n(n-1) = 6, plus the op start, bounds the
  // depth; every terminal schedule delivered all of them.
  EXPECT_EQ(result.max_depth_seen, 7u);
  EXPECT_GT(result.terminal_schedules, 100u);
}

TEST(McExhaustive, WriteThenReadNeverStale) {
  // Claim 2 (no overwritten reads), exhaustively: across every delivery
  // order, a read that *starts after the write completed* returns v1.
  auto s = base(3, 1);
  s.ops = {write_op(0, 1), read_op(2, /*after=*/0)};
  const auto result = explore(s);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.ok()) << result.violations[0].detail;
  EXPECT_GT(result.terminal_schedules, 10'000u);
}

TEST(McExhaustive, WriteConcurrentReadIsAtomicEverySchedule) {
  // The flagship: one write racing one read at n=3 — every reachable
  // schedule (~300k terminals) checked for atomicity, liveness, and
  // Lemmas 2-5 / P1 / P2 after every single step.
  auto s = base(3, 1);
  s.ops = {write_op(0, 1), read_op(1)};
  const auto result = explore(s);
  EXPECT_TRUE(result.complete) << "state space should fit the budget";
  EXPECT_TRUE(result.ok()) << result.violations[0].detail;
  EXPECT_GT(result.terminal_schedules, 250'000u);
}

TEST(McExhaustive, WriteSurvivesAnyCrashTiming) {
  // Lemma 8 with the adversary also choosing *when* (and whether) to crash
  // one reader: the write must complete in every terminal schedule (the
  // quorum n-t = 2 never needs the victim).
  auto s = base(3, 1);
  s.ops = {write_op(0, 1)};
  s.max_crashes = 1;
  s.crash_candidates = {1, 2};
  const auto result = explore(s);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.ok()) << result.violations[0].detail;
  EXPECT_GT(result.terminal_schedules, 500u);
}

TEST(McExhaustive, ResultIsDeterministic) {
  auto s = base(3, 1);
  s.ops = {write_op(0, 1)};
  const auto a = explore(s);
  const auto b = explore(s);
  EXPECT_EQ(a.nodes_visited, b.nodes_visited);
  EXPECT_EQ(a.terminal_schedules, b.terminal_schedules);
}

TEST(McExhaustive, BudgetTruncationIsReported) {
  auto s = base(3, 1);
  s.ops = {write_op(0, 1), read_op(1), read_op(2)};
  ExploreOptions opt;
  opt.max_nodes = 5'000;
  const auto result = explore(s, opt);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.nodes_visited, 5'000u);
  EXPECT_TRUE(result.ok());
}

// ---- detection power: the ablations must be caught ------------------------------

TEST(McAblation, EagerProceedBreaksClaim2Exhaustively) {
  // Remove the responder's freshness wait (Fig. 1 line 20): the explorer
  // must find C2 stale reads — and every violation must be C2, because
  // line 20 pays for exactly that claim (experiment D6's attribution).
  auto s = base(3, 1);
  s.factory = [](const GroupConfig& cfg, ProcessId pid) {
    TwoBitOptions topt;
    topt.eager_proceed = true;
    return std::make_unique<TwoBitProcess>(cfg, pid, topt);
  };
  s.ops = {write_op(0, 1), read_op(2, /*after=*/0)};
  const auto result = explore(s);
  EXPECT_TRUE(result.complete);
  EXPECT_GT(result.violations_found, 0u)
      << "the ablated register has reachable stale reads; exhaustive "
         "search must find them";
  for (const auto& v : result.violations) {
    EXPECT_EQ(v.kind, McViolation::Kind::kAtomicity);
    EXPECT_NE(v.detail.find("C2"), std::string::npos) << v.detail;
  }
}

TEST(McAblation, ViolationScheduleReplays) {
  auto s = base(3, 1);
  s.factory = [](const GroupConfig& cfg, ProcessId pid) {
    TwoBitOptions topt;
    topt.eager_proceed = true;
    return std::make_unique<TwoBitProcess>(cfg, pid, topt);
  };
  s.ops = {write_op(0, 1), read_op(2, /*after=*/0)};
  const auto result = explore(s);
  ASSERT_FALSE(result.violations.empty());
  const auto& violation = result.violations.front();
  const auto run = replay(s, violation.schedule);
  ASSERT_TRUE(run->terminal());
  const auto check = SwmrChecker::check(run->records(), s.cfg.initial);
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.error, violation.detail) << "replay must reproduce";
}

TEST(McAblation, WindowEvictionTripsTheInvariantVerdict) {
  // The bounded-history ablation (the paper's open problem) breaks the
  // "history length tracks w_sync" predicate as soon as eviction starts;
  // the explorer's invariant verdict must catch it and prune.
  auto s = base(3, 1);
  s.factory = [](const GroupConfig& cfg, ProcessId pid) {
    TwoBitOptions topt;
    topt.history_window = 1;
    return std::make_unique<TwoBitProcess>(cfg, pid, topt);
  };
  s.ops = {write_op(0, 1), write_op(0, 2, /*after=*/0)};
  ExploreOptions opt;
  opt.max_nodes = 200'000;
  const auto result = explore(s, opt);
  EXPECT_GT(result.violations_found, 0u);
  bool saw_invariant = false;
  for (const auto& v : result.violations) {
    if (v.kind == McViolation::Kind::kInvariant) saw_invariant = true;
  }
  EXPECT_TRUE(saw_invariant);
}

// ---- scripted adversary: the Claim-3 window --------------------------------------

/// Apply the first enabled delivery matching (from, to, type); fails the
/// test if none matches.
void deliver(McRun& run, ProcessId from, ProcessId to,
             std::optional<TwoBitType> type = std::nullopt) {
  const auto frames = run.in_flight_frames();
  for (std::size_t k = 0; k < frames.size(); ++k) {
    if (frames[k].from != from || frames[k].to != to) continue;
    if (type.has_value() &&
        frames[k].type != static_cast<std::uint8_t>(*type)) {
      continue;
    }
    run.apply_enabled(k);  // kDeliver choices lead and align with frames
    return;
  }
  FAIL() << "no in-flight frame " << from << "->" << to;
}

void start_op(McRun& run, std::size_t op_index) {
  const auto choices = run.enabled();
  for (std::size_t k = 0; k < choices.size(); ++k) {
    if (choices[k].kind == McRun::Choice::Kind::kStartOp &&
        choices[k].arg == op_index) {
      run.apply_enabled(k);
      return;
    }
  }
  FAIL() << "op " << op_index << " not startable";
}

TEST(McScripted, SkipSecondWaitAllowsNewOldInversion) {
  // Drop Fig. 1 line 9 (the read's second quorum wait) and script the
  // exact Claim-3 alignment the proof of Lemma 10 rules out: read A at p1
  // returns v1 while p2..p4 are still stale; read B at p4 then assembles a
  // PROCEED quorum {p4, p2, p3} of stale processes and returns v0 — a
  // new/old inversion. (At n=3 this window is closed structurally: B's
  // quorum of 2 must touch a fresh process. n=5 is the smallest SWMR
  // instance where line 9 has work to do for this op pattern.)
  auto s = base(5, 2);
  s.factory = [](const GroupConfig& cfg, ProcessId pid) {
    TwoBitOptions topt;
    topt.skip_read_second_wait = true;
    return std::make_unique<TwoBitProcess>(cfg, pid, topt);
  };
  s.ops = {write_op(0, 1), read_op(1), read_op(4, /*after=*/1)};
  McRun run(s);

  start_op(run, 0);              // write(v1): WRITE -> p1..p4 in flight
  deliver(run, 0, 1);            // p1 learns v1, forwards to p0,p2,p3,p4
  deliver(run, 1, 0);            // ping-pong back: p0 knows p1 knows v1

  start_op(run, 1);              // read A at p1
  deliver(run, 1, 0, TwoBitType::kRead);
  deliver(run, 1, 2, TwoBitType::kRead);
  deliver(run, 0, 1, TwoBitType::kProceed);  // p0 fresh AND sees p1 fresh
  deliver(run, 2, 1, TwoBitType::kProceed);  // p2 stale: proceeds at once
  // Quorum {p1, p0, p2} reached; line 9 skipped: A returned index 1.

  start_op(run, 2);              // read B at p4 — starts after A ended
  deliver(run, 4, 2, TwoBitType::kRead);
  deliver(run, 4, 3, TwoBitType::kRead);
  deliver(run, 2, 4, TwoBitType::kProceed);  // both responders stale
  deliver(run, 3, 4, TwoBitType::kProceed);
  // Quorum {p4, p2, p3}: B returned index 0. Inversion committed.

  while (!run.terminal()) run.apply_enabled(0);  // drain the rest
  EXPECT_TRUE(run.invariant_error().empty())
      << "the write-path lemmas are untouched by the read ablation";
  const auto check = SwmrChecker::check(run.records(), s.cfg.initial);
  ASSERT_FALSE(check.ok) << "the scripted schedule must exhibit C3";
  EXPECT_NE(check.error.find("C3"), std::string::npos) << check.error;
}

TEST(McScripted, FaithfulAlgorithmClosesTheSameWindow) {
  // Same script against the faithful register: after A's PROCEED quorum,
  // line 9 parks the read until n-t processes are known fresh, so A is
  // simply not finished yet when B would need to start — the adversary
  // cannot commit the inversion. (B never becomes startable before more
  // dissemination happens; the run stays atomic through the drain.)
  auto s = base(5, 2);
  s.ops = {write_op(0, 1), read_op(1), read_op(4, /*after=*/1)};
  McRun run(s);

  start_op(run, 0);
  deliver(run, 0, 1);
  deliver(run, 1, 0);
  start_op(run, 1);
  deliver(run, 1, 0, TwoBitType::kRead);
  deliver(run, 1, 2, TwoBitType::kRead);
  deliver(run, 0, 1, TwoBitType::kProceed);
  deliver(run, 2, 1, TwoBitType::kProceed);

  // Line 9 is in force: A must still be running, so B is not startable.
  bool b_startable = false;
  for (const auto& c : run.enabled()) {
    if (c.kind == McRun::Choice::Kind::kStartOp && c.arg == 2) {
      b_startable = true;
    }
  }
  EXPECT_FALSE(b_startable)
      << "line 9 must hold read A open until a fresh quorum exists";

  while (!run.terminal()) run.apply_enabled(0);
  EXPECT_TRUE(run.invariant_error().empty()) << run.invariant_error();
  EXPECT_TRUE(run.liveness_error().empty()) << run.liveness_error();
  const auto check = SwmrChecker::check(run.records(), s.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
}

// ---- bounded history & crash-rejoin ----------------------------------------------

// Instrumented builds pay ~20x per explored node, which would blow the
// suite's CTest timeout on the two large explorations below. The sanitizer
// gates are after memory/race bugs on the explored paths, not after
// exhaustiveness — the plain release/debug runs keep the full budget.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define TBR_MC_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define TBR_MC_SANITIZED 1
#endif
#endif

constexpr std::size_t big_explore_budget() {
#ifdef TBR_MC_SANITIZED
  return 100'000;
#else
  return 2'000'000;
#endif
}

TwoBitOptions bounded_opts() {
  TwoBitOptions topt;
  topt.bounded_history = true;
  topt.ack_interval = 1;  // tightest GC: every applied value is acked
  return topt;
}

std::unique_ptr<TwoBitProcess> make_bounded(const GroupConfig& cfg,
                                            ProcessId pid) {
  return std::make_unique<TwoBitProcess>(cfg, pid, bounded_opts());
}

std::unique_ptr<TwoBitProcess> make_rejoiner(const GroupConfig& cfg,
                                             ProcessId pid) {
  auto topt = bounded_opts();
  topt.recover_via_catchup = true;
  return std::make_unique<TwoBitProcess>(cfg, pid, topt);
}

/// Apply the first enabled choice of `kind` with argument `arg`.
void apply_kind(McRun& run, McRun::Choice::Kind kind, std::size_t arg) {
  const auto choices = run.enabled();
  for (std::size_t k = 0; k < choices.size(); ++k) {
    if (choices[k].kind == kind && choices[k].arg == arg) {
      run.apply_enabled(k);
      return;
    }
  }
  FAIL() << "choice not enabled";
}

TEST(McBounded, AckedPrefixGcIsAtomicEverySchedule) {
  // Acked-prefix GC under the full adversary: across every delivery order
  // of two writes (WRITEs, ACKs, and catch-ups freely interleaved), the
  // lemma suite — including the GC-soundness invariant that nails the
  // window ablation — holds at every step, and every terminal history is
  // atomic. This is the machine-checked form of "nobody ever needs a
  // reclaimed value".
  auto s = base(3, 1);
  s.factory = make_bounded;
  s.ops = {write_op(0, 1), write_op(0, 2, /*after=*/0)};
  ExploreOptions opt;
  opt.max_nodes = big_explore_budget();
  const auto result = explore(s, opt);
  EXPECT_TRUE(result.ok()) << result.violations[0].detail;
  EXPECT_GT(result.terminal_schedules, 0u);
}

TEST(McBounded, CanonicalRunReclaimsHistory) {
  // A plain in-order drain of three writes must actually exercise GC: with
  // ack_interval=1 the writer's checkpoint advances as peers ack, so its
  // base moves off genesis while the run stays consistent end to end.
  auto s = base(3, 1);
  s.factory = make_bounded;
  s.ops = {write_op(0, 1), write_op(0, 2, /*after=*/0),
           write_op(0, 3, /*after=*/1)};
  McRun run(s);
  while (!run.terminal()) run.apply_enabled(0);
  EXPECT_TRUE(run.invariant_error().empty()) << run.invariant_error();
  EXPECT_TRUE(run.liveness_error().empty()) << run.liveness_error();
  const auto* writer = dynamic_cast<const TwoBitProcess*>(&run.process(0));
  ASSERT_NE(writer, nullptr);
  EXPECT_GT(writer->gc_reclaimed_count(), 0u);
  EXPECT_GT(writer->history_base(), 0);
  EXPECT_EQ(writer->evicted_count(), 0u) << "GC is not window eviction";
  const auto check = SwmrChecker::check(run.records(), s.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(McRecovery, RecoverChoiceResetsChannelsAndRejoins) {
  // Mechanics of the kRecover choice: crash p1 before it sees the write,
  // resurrect it, and watch the fresh incarnation bootstrap. The old
  // incarnation's frames are gone, a CATCHUP broadcast appears, and at the
  // terminal state the rejoiner has adopted the writer's checkpoint.
  auto s = base(3, 1);
  s.factory = make_bounded;
  s.recover_factory = make_rejoiner;
  s.max_crashes = 1;
  s.crash_candidates = {1};
  s.max_recoveries = 1;
  s.ops = {write_op(0, 1)};
  McRun run(s);

  start_op(run, 0);  // WRITE(v1) -> p1, p2
  apply_kind(run, McRun::Choice::Kind::kCrash, 1);
  apply_kind(run, McRun::Choice::Kind::kRecover, 1);
  EXPECT_EQ(run.recoveries(), 1u);

  std::size_t catchups = 0;
  for (const auto& f : run.in_flight_frames()) {
    if (f.from == 1) {
      EXPECT_EQ(f.type, static_cast<std::uint8_t>(TwoBitType::kCatchUp));
      ++catchups;
    }
  }
  EXPECT_EQ(catchups, 2u) << "rejoiner solicits checkpoints from both peers";

  while (!run.terminal()) run.apply_enabled(0);
  EXPECT_TRUE(run.invariant_error().empty()) << run.invariant_error();
  EXPECT_TRUE(run.liveness_error().empty()) << run.liveness_error();
  const auto* rejoiner = dynamic_cast<const TwoBitProcess*>(&run.process(1));
  ASSERT_NE(rejoiner, nullptr);
  EXPECT_TRUE(rejoiner->has_recovered());
  EXPECT_EQ(rejoiner->wsync(1), 1) << "bootstrap caught the missed write";
  const auto check = SwmrChecker::check(run.records(), s.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(McRecovery, CrashDuringGcAnyTimingStaysAtomic) {
  // Crash-during-GC, exhaustively: the adversary picks when p2 dies and
  // when (always eventually, by the frontier rules) it rejoins, against a
  // write whose ACK/GC traffic is in full swing. Every schedule must stay
  // atomic and live — the checkpoint a rejoiner adopts from any n-t quorum
  // dominates everything GC reclaimed while it was gone.
  auto s = base(3, 1);
  s.factory = make_bounded;
  s.recover_factory = make_rejoiner;
  s.max_crashes = 1;
  s.crash_candidates = {2};
  s.max_recoveries = 1;
  s.ops = {write_op(0, 1)};
  ExploreOptions opt;
  opt.max_nodes = big_explore_budget();
  const auto result = explore(s, opt);
  EXPECT_TRUE(result.ok()) << result.violations[0].detail;
  EXPECT_GT(result.terminal_schedules, 0u);
}

TEST(McRecovery, CheckpointCatchUpRaceWalks) {
  // Deep sampled coverage of the checkpoint/catch-up races: two writes and
  // a read at the crash candidate, so walks hit rejoin-while-writing,
  // WRITE-racing-CHECKPOINT, and the deferred-read path (a read issued at
  // a rejoiner before its bootstrap finishes completes afterwards, not
  // never).
  auto s = base(3, 1);
  s.factory = make_bounded;
  s.recover_factory = make_rejoiner;
  s.max_crashes = 1;
  s.crash_candidates = {2};
  s.max_recoveries = 1;
  s.ops = {write_op(0, 1), write_op(0, 2, /*after=*/0), read_op(2)};
  const auto result = random_walks(s, 5'000, /*seed=*/31);
  EXPECT_TRUE(result.ok()) << result.violations[0].detail;
  EXPECT_EQ(result.terminal_schedules, 5'000u);
}

TEST(McRecovery, ValidationRequiresFactoryForRecoveries) {
  auto s = base(3, 1);
  s.ops = {write_op(0, 1)};
  s.max_crashes = 1;
  s.crash_candidates = {1};
  s.max_recoveries = 1;  // no recover_factory
  EXPECT_THROW(McRun run(s), ContractViolation);
}

// ---- random walks ----------------------------------------------------------------

TEST(McRandom, DeepWalksFaithfulStayAtomic) {
  auto s = base(5, 2);
  s.ops = {write_op(0, 1), write_op(0, 2, /*after=*/0), read_op(1),
           read_op(3), read_op(4, /*after=*/2)};
  const auto result = random_walks(s, 1'500, /*seed=*/11);
  EXPECT_EQ(result.terminal_schedules, 1'500u);
  EXPECT_TRUE(result.ok()) << result.violations[0].detail;
  EXPECT_FALSE(result.complete) << "sampling must not claim completeness";
}

TEST(McRandom, WalksWithCrashesStayAtomicAndLive) {
  auto s = base(5, 2);
  s.ops = {write_op(0, 1), read_op(1), read_op(2), read_op(3)};
  s.max_crashes = 2;
  s.crash_candidates = {3, 4};
  const auto result = random_walks(s, 1'000, /*seed=*/23);
  EXPECT_TRUE(result.ok()) << result.violations[0].detail;
}

TEST(McRandom, SameSeedSameOutcome) {
  auto s = base(4, 1);
  s.ops = {write_op(0, 1), read_op(2)};
  const auto a = random_walks(s, 200, 5);
  const auto b = random_walks(s, 200, 5);
  EXPECT_EQ(a.max_depth_seen, b.max_depth_seen);
  EXPECT_EQ(a.violations_found, b.violations_found);
}

// ---- liveness verdict ---------------------------------------------------------------

// A register whose reads hang forever: the liveness detector must flag the
// deadlock at the terminal state (and attribute it to the right op).
class StallingProcess final : public RegisterProcessBase {
 public:
  StallingProcess(GroupConfig cfg, ProcessId self)
      : RegisterProcessBase(cfg, self) {}
  void start_write(NetworkContext&, Value, WriteDone done) override {
    if (done) done();
  }
  void start_read(NetworkContext&, ReadDone) override {
    // Never completes: simulates a protocol bug that loses a continuation.
  }
  void on_message(NetworkContext&, ProcessId, const Message&) override {}
  std::uint64_t local_memory_bytes() const override { return 0; }
  const Codec& codec() const override { return twobit_codec(); }
};

TEST(McLiveness, DeadlockIsDetectedAndAttributed) {
  auto s = base(3, 1);
  s.factory = [](const GroupConfig& cfg, ProcessId pid) {
    return std::make_unique<StallingProcess>(cfg, pid);
  };
  s.ops = {read_op(1)};
  const auto result = explore(s);
  EXPECT_TRUE(result.complete);
  ASSERT_GT(result.violations_found, 0u);
  bool saw_liveness = false;
  for (const auto& v : result.violations) {
    if (v.kind == McViolation::Kind::kLiveness) {
      saw_liveness = true;
      EXPECT_NE(v.detail.find("op #0"), std::string::npos) << v.detail;
    }
  }
  EXPECT_TRUE(saw_liveness);
}

}  // namespace
}  // namespace tbr
