// Functional tests of the two-bit algorithm on the simulator: reads/writes,
// group sizes from 1 to 12, the writer fast-read remark, message-count
// identities from Theorem 2, and crash behaviour within t.
#include <gtest/gtest.h>

#include "core/twobit_codec.hpp"
#include "core/twobit_process.hpp"
#include "workload/sim_register_group.hpp"

namespace tbr {
namespace {

GroupConfig make_cfg(std::uint32_t n, std::uint32_t t, Value initial,
                     bool fast_read = false) {
  GroupConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.writer = 0;
  cfg.initial = std::move(initial);
  cfg.writer_fast_read = fast_read;
  return cfg;
}

SimRegisterGroup make_group(std::uint32_t n, std::uint32_t t,
                            std::uint64_t seed = 1, bool fast_read = false) {
  SimRegisterGroup::Options opt;
  opt.cfg = make_cfg(n, t, Value::from_int64(0), fast_read);
  opt.algo = Algorithm::kTwoBit;
  opt.seed = seed;
  return SimRegisterGroup(std::move(opt));
}

TEST(TwoBitBasic, InitialValueReadableEverywhere) {
  auto group = make_group(5, 2);
  for (ProcessId pid = 0; pid < 5; ++pid) {
    const auto out = group.client().read_sync(pid);
    EXPECT_EQ(out.value.to_int64(), 0) << "process " << pid;
    EXPECT_EQ(out.version, 0);
  }
}

TEST(TwoBitBasic, WriteThenReadEverywhere) {
  auto group = make_group(5, 2);
  group.client().write_sync(Value::from_int64(41));
  for (ProcessId pid = 0; pid < 5; ++pid) {
    const auto out = group.client().read_sync(pid);
    EXPECT_EQ(out.value.to_int64(), 41);
    EXPECT_EQ(out.version, 1);
  }
}

TEST(TwoBitBasic, SequenceOfWritesReadsLatest) {
  auto group = make_group(7, 3);
  for (int k = 1; k <= 20; ++k) {
    group.client().write_sync(Value::from_int64(k * 100));
    const auto out = group.client().read_sync(static_cast<ProcessId>(k % 7));
    EXPECT_EQ(out.value.to_int64(), k * 100);
    EXPECT_EQ(out.version, k);
  }
}

TEST(TwoBitBasic, SingleProcessGroup) {
  auto group = make_group(1, 0);
  group.client().write_sync(Value::from_int64(9));
  const auto out = group.client().read_sync(0);
  EXPECT_EQ(out.value.to_int64(), 9);
}

TEST(TwoBitBasic, TwoProcessesZeroFaults) {
  auto group = make_group(2, 0);
  group.client().write_sync(Value::from_int64(5));
  EXPECT_EQ(group.client().read_sync(1).value.to_int64(), 5);
  EXPECT_EQ(group.client().read_sync(0).value.to_int64(), 5);
}

TEST(TwoBitBasic, StringValuesRoundTrip) {
  auto group = make_group(3, 1);
  group.client().write_sync(Value::from_string("configuration v2"));
  EXPECT_EQ(group.client().read_sync(2).value.to_string(), "configuration v2");
}

TEST(TwoBitBasic, WriterCanReadViaFullProtocol) {
  auto group = make_group(5, 2);
  group.client().write_sync(Value::from_int64(77));
  const auto out = group.client().read_sync(0);  // writer reads, no fast path
  EXPECT_EQ(out.value.to_int64(), 77);
}

TEST(TwoBitBasic, WriterFastReadIsLocal) {
  auto group = make_group(5, 2, /*seed=*/1, /*fast_read=*/true);
  group.client().write_sync(Value::from_int64(13));
  const auto before = group.net().stats().total_sent();
  const auto out = group.client().read_sync(0);
  EXPECT_EQ(out.value.to_int64(), 13);
  EXPECT_EQ(out.latency, 0);  // resolved without any simulated delay
  EXPECT_EQ(group.net().stats().total_sent(), before);  // and no messages
}

TEST(TwoBitBasic, SurvivesMinorityCrashBeforeOps) {
  auto group = make_group(5, 2);
  group.crash(3);
  group.crash(4);
  group.client().write_sync(Value::from_int64(1000));
  for (ProcessId pid = 0; pid < 3; ++pid) {
    EXPECT_EQ(group.client().read_sync(pid).value.to_int64(), 1000);
  }
}

TEST(TwoBitBasic, SurvivesCrashBetweenWrites) {
  auto group = make_group(7, 3);
  group.client().write_sync(Value::from_int64(1));
  group.crash(6);
  group.client().write_sync(Value::from_int64(2));
  group.crash(5);
  group.client().write_sync(Value::from_int64(3));
  group.crash(4);
  group.client().write_sync(Value::from_int64(4));
  EXPECT_EQ(group.client().read_sync(1).value.to_int64(), 4);
  EXPECT_EQ(group.client().read_sync(3).value.to_int64(), 4);
}

TEST(TwoBitBasic, ManyWritesLongHistory) {
  auto group = make_group(3, 1);
  for (int k = 1; k <= 200; ++k) group.client().write_sync(Value::from_int64(k));
  group.settle();
  const auto out = group.client().read_sync(2);
  EXPECT_EQ(out.value.to_int64(), 200);
  EXPECT_EQ(out.version, 200);
  // After settling, every process holds the full history (Lemma 4 + Lemma 6).
  for (ProcessId pid = 0; pid < 3; ++pid) {
    const auto& proc = group.net().process_as<TwoBitProcess>(pid);
    EXPECT_EQ(proc.history().size(), 201u);
  }
}

// ---- Theorem 2: message counts -----------------------------------------------

TEST(TwoBitTheorem2, WriteCostsNTimesNMinusOneMessagesSteadyState) {
  for (const std::uint32_t n : {2u, 3u, 5u, 8u}) {
    auto group = make_group(n, (n - 1) / 2);
    group.client().write_sync(Value::from_int64(1));
    group.settle();  // let the first write's dissemination finish
    const auto before = group.net().stats().snapshot();
    group.client().write_sync(Value::from_int64(2));
    group.settle();
    const auto delta = group.net().stats().diff_since(before);
    // Theorem 2: the writer sends n-1 frames and each of the n-1 others
    // forwards the value once to every process: n(n-1) messages total.
    EXPECT_EQ(delta.total_sent(), std::uint64_t{n} * (n - 1)) << "n=" << n;
  }
}

TEST(TwoBitTheorem2, ReadCostsTwoNMinusOneMessagesSteadyState) {
  for (const std::uint32_t n : {2u, 3u, 5u, 8u}) {
    auto group = make_group(n, (n - 1) / 2);
    group.client().write_sync(Value::from_int64(1));
    group.settle();
    const auto before = group.net().stats().snapshot();
    const auto out = group.client().read_sync(n - 1);
    group.settle();
    const auto delta = group.net().stats().diff_since(before);
    EXPECT_EQ(out.value.to_int64(), 1);
    // n-1 READ frames out, one PROCEED back from each: 2(n-1) total.
    EXPECT_EQ(delta.total_sent(), 2 * (std::uint64_t{n} - 1)) << "n=" << n;
    EXPECT_EQ(delta.sent_of_type(
                  static_cast<std::uint8_t>(TwoBitType::kRead)),
              std::uint64_t{n} - 1);
    EXPECT_EQ(delta.sent_of_type(
                  static_cast<std::uint8_t>(TwoBitType::kProceed)),
              std::uint64_t{n} - 1);
  }
}

TEST(TwoBitTheorem2, EveryMessageCarriesTwoControlBits) {
  auto group = make_group(5, 2);
  group.client().write_sync(Value::from_int64(1));
  group.client().read_sync(3);
  group.settle();
  EXPECT_EQ(group.net().stats().max_control_bits_per_msg(), 2u);
}

// ---- direct process-level checks -----------------------------------------------

TEST(TwoBitProcessLevel, RejectsWriteFromNonWriter) {
  auto group = make_group(3, 1);
  auto& p1 = group.net().process_as<TwoBitProcess>(1);
  EXPECT_THROW(
      p1.start_write(group.net().context(1), Value::from_int64(1), [] {}),
      ContractViolation);
}

TEST(TwoBitProcessLevel, RejectsConcurrentOpsOnOneProcess) {
  auto group = make_group(3, 1);
  auto& p1 = group.net().process_as<TwoBitProcess>(1);
  p1.start_read(group.net().context(1), [](const Value&, SeqNo) {});
  EXPECT_THROW(p1.start_read(group.net().context(1),
                             [](const Value&, SeqNo) {}),
               ContractViolation);
}

TEST(TwoBitProcessLevel, ConfigValidationRejectsBadQuorum) {
  GroupConfig cfg = make_cfg(4, 2, Value::from_int64(0));
  EXPECT_THROW(cfg.validate(), ContractViolation);  // needs 2t < n
}

TEST(TwoBitProcessLevel, HistoriesConvergeAfterSettle) {
  auto group = make_group(6, 2);
  for (int k = 1; k <= 10; ++k) group.client().write_sync(Value::from_int64(k));
  group.settle();
  for (ProcessId pid = 0; pid < 6; ++pid) {
    const auto& proc = group.net().process_as<TwoBitProcess>(pid);
    EXPECT_EQ(proc.wsync(pid), 10);
    for (ProcessId j = 0; j < 6; ++j) {
      EXPECT_EQ(proc.wsync(j), 10) << "i=" << pid << " j=" << j;
    }
  }
}

TEST(TwoBitProcessLevel, LocalMemoryGrowsWithWrites) {
  auto group = make_group(3, 1);
  const auto& proc = group.net().process_as<TwoBitProcess>(1);
  const auto before = proc.local_memory_bytes();
  for (int k = 1; k <= 50; ++k) group.client().write_sync(Value::from_int64(k));
  group.settle();
  const auto after = proc.local_memory_bytes();
  EXPECT_GT(after, before);
  EXPECT_GE(after - before, 50u * 8u);  // at least the 50 new 8-byte values
}

}  // namespace
}  // namespace tbr
