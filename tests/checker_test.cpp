// Checker tests: the fast SWMR checker must accept canonical atomic
// histories and reject each specific violation class (C0-C3 plus model
// sanity), with hand-crafted histories.
#include <gtest/gtest.h>

#include "checker/swmr_checker.hpp"
#include "checker/wg_checker.hpp"
#include "common/contracts.hpp"

namespace tbr {
namespace {

const Value kInit = Value::from_int64(0);

// Small DSL for hand-written histories.
class H {
 public:
  H& write(ProcessId p, Tick start, Tick end, SeqNo index) {
    const auto id = log_.begin_write(p, start, index, Value::from_int64(index));
    log_.end_write(id, end);
    return *this;
  }
  H& write_incomplete(ProcessId p, Tick start, SeqNo index) {
    (void)log_.begin_write(p, start, index, Value::from_int64(index));
    return *this;
  }
  H& read(ProcessId p, Tick start, Tick end, SeqNo index) {
    const auto id = log_.begin_read(p, start);
    log_.end_read(id, end, Value::from_int64(index), index);
    return *this;
  }
  /// A read returning a value that does not match its index (for C0 tests).
  H& read_lying(ProcessId p, Tick start, Tick end, SeqNo index,
                std::int64_t value) {
    const auto id = log_.begin_read(p, start);
    log_.end_read(id, end, Value::from_int64(value), index);
    return *this;
  }
  H& read_incomplete(ProcessId p, Tick start) {
    (void)log_.begin_read(p, start);
    return *this;
  }
  /// Read of the initial value: index 0, value = kInit.
  H& read_initial(ProcessId p, Tick start, Tick end) {
    const auto id = log_.begin_read(p, start);
    log_.end_read(id, end, kInit, 0);
    return *this;
  }
  CheckResult check() const { return SwmrChecker::check(log_.ops(), kInit); }
  std::vector<OpRecord> ops() const { return log_.ops(); }

 private:
  HistoryLog log_;
};

// ---- accepting histories --------------------------------------------------------

TEST(SwmrCheckerTest, EmptyHistoryOk) {
  EXPECT_TRUE(H{}.check().ok);
}

TEST(SwmrCheckerTest, ReadOfInitialValueOk) {
  EXPECT_TRUE(H{}.read_initial(1, 0, 10).check().ok);
}

TEST(SwmrCheckerTest, SequentialWriteReadOk) {
  const auto r = H{}
                     .write(0, 0, 10, 1)
                     .read(1, 20, 30, 1)
                     .write(0, 40, 50, 2)
                     .read(2, 60, 70, 2)
                     .check();
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(SwmrCheckerTest, ConcurrentReadMayReturnOldOrNew) {
  // Read overlaps write 2: index 1 and index 2 are both legal.
  EXPECT_TRUE(H{}
                  .write(0, 0, 10, 1)
                  .write(0, 20, 40, 2)
                  .read(1, 25, 35, 1)
                  .check()
                  .ok);
  EXPECT_TRUE(H{}
                  .write(0, 0, 10, 1)
                  .write(0, 20, 40, 2)
                  .read(1, 25, 35, 2)
                  .check()
                  .ok);
}

TEST(SwmrCheckerTest, IncompleteFinalWriteMayBeReadOrNot) {
  // The writer crashed mid-write; a read may return it (took effect)...
  EXPECT_TRUE(H{}
                  .write(0, 0, 10, 1)
                  .write_incomplete(0, 20, 2)
                  .read(1, 30, 40, 2)
                  .check()
                  .ok);
  // ...or not (never took effect).
  EXPECT_TRUE(H{}
                  .write(0, 0, 10, 1)
                  .write_incomplete(0, 20, 2)
                  .read(1, 30, 40, 1)
                  .check()
                  .ok);
}

TEST(SwmrCheckerTest, IncompleteReadConstrainsNothing) {
  EXPECT_TRUE(H{}
                  .write(0, 0, 10, 1)
                  .read_incomplete(1, 5)
                  .read(2, 20, 30, 1)
                  .check()
                  .ok);
}

TEST(SwmrCheckerTest, EqualIndexReadsInAnyOrderOk) {
  EXPECT_TRUE(H{}
                  .write(0, 0, 10, 1)
                  .read(1, 20, 30, 1)
                  .read(2, 40, 50, 1)
                  .read(1, 60, 70, 1)
                  .check()
                  .ok);
}

// ---- rejecting histories ----------------------------------------------------------

TEST(SwmrCheckerTest, RejectsC0ValueMismatch) {
  const auto r =
      H{}.write(0, 0, 10, 1).read_lying(1, 20, 30, 1, 999).check();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("C0"), std::string::npos) << r.error;
}

TEST(SwmrCheckerTest, RejectsC0IndexOutOfRange) {
  const auto r = H{}.write(0, 0, 10, 1).read(1, 20, 30, 7).check();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("C0"), std::string::npos) << r.error;
}

TEST(SwmrCheckerTest, RejectsC1ReadFromFuture) {
  // Read completes before write 1 even begins, yet returns it.
  const auto r = H{}.read(1, 0, 5, 1).write(0, 10, 20, 1).check();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("C1"), std::string::npos) << r.error;
}

TEST(SwmrCheckerTest, RejectsC2StaleRead) {
  // Write 2 completed before the read started; returning 1 is stale.
  const auto r = H{}
                     .write(0, 0, 10, 1)
                     .write(0, 20, 30, 2)
                     .read(1, 40, 50, 1)
                     .check();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("C2"), std::string::npos) << r.error;
}

TEST(SwmrCheckerTest, RejectsC3NewOldInversion) {
  // First read returns 2, a later (non-overlapping) read returns 1.
  const auto r = H{}
                     .write(0, 0, 10, 1)
                     .write(0, 20, 100, 2)  // write 2 still in flight
                     .read(1, 30, 40, 2)
                     .read(2, 50, 60, 1)
                     .check();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("C3"), std::string::npos) << r.error;
}

TEST(SwmrCheckerTest, AcceptsOverlappingReadsEitherOrder) {
  // Same as above but the reads overlap: inversion is then legal.
  const auto r = H{}
                     .write(0, 0, 10, 1)
                     .write(0, 20, 100, 2)
                     .read(1, 30, 55, 2)
                     .read(2, 50, 60, 1)
                     .check();
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(SwmrCheckerTest, RejectsOverlappingWrites) {
  const auto r = H{}.write(0, 0, 50, 1).write(0, 40, 90, 2).check();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("model"), std::string::npos) << r.error;
}

TEST(SwmrCheckerTest, RejectsTwoWriterProcesses) {
  const auto r = H{}.write(0, 0, 10, 1).write(1, 20, 30, 2).check();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("writer"), std::string::npos) << r.error;
}

TEST(SwmrCheckerTest, RejectsGappyWriteIndices) {
  const auto r = H{}.write(0, 0, 10, 1).write(0, 20, 30, 3).check();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("1..W"), std::string::npos) << r.error;
}

TEST(SwmrCheckerTest, RejectsOverlappingOpsOnOneProcess) {
  H h;
  h.write(0, 0, 10, 1);
  // Process 1 starts a second read before the first completes.
  const auto r = h.read_incomplete(1, 20).read(1, 25, 30, 1).check();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("overlap"), std::string::npos) << r.error;
}

// ---- Wing-Gong ground truth on the same histories -----------------------------------

TEST(WgCheckerTest, AgreesOnCanonicalGoodHistory) {
  const auto ops =
      H{}.write(0, 0, 10, 1).read(1, 20, 30, 1).write(0, 40, 50, 2).ops();
  EXPECT_TRUE(wg_linearizable(ops, kInit));
}

TEST(WgCheckerTest, AgreesOnStaleReadViolation) {
  const auto ops = H{}
                       .write(0, 0, 10, 1)
                       .write(0, 20, 30, 2)
                       .read(1, 40, 50, 1)
                       .ops();
  EXPECT_FALSE(wg_linearizable(ops, kInit));
}

TEST(WgCheckerTest, AgreesOnInversionViolation) {
  const auto ops = H{}
                       .write(0, 0, 10, 1)
                       .write(0, 20, 100, 2)
                       .read(1, 30, 40, 2)
                       .read(2, 50, 60, 1)
                       .ops();
  EXPECT_FALSE(wg_linearizable(ops, kInit));
}

TEST(WgCheckerTest, PendingWriteBothWays) {
  EXPECT_TRUE(wg_linearizable(
      H{}.write_incomplete(0, 0, 1).read(1, 10, 20, 1).ops(), kInit));
  EXPECT_TRUE(wg_linearizable(
      H{}.write_incomplete(0, 0, 1).read_initial(1, 10, 20).ops(), kInit));
}

TEST(WgCheckerTest, ValueMismatchRejected) {
  const auto ops = H{}.write(0, 0, 10, 1).read_lying(1, 20, 30, 1, 5).ops();
  EXPECT_FALSE(wg_linearizable(ops, kInit));
}

TEST(WgCheckerTest, SizeGuard) {
  H h;
  h.write(0, 0, 1, 1);
  for (int i = 0; i < 30; ++i) {
    h.read(1, 10 + 10 * i, 15 + 10 * i, 1);
  }
  EXPECT_THROW((void)wg_linearizable(h.ops(), kInit), ContractViolation);
}

}  // namespace
}  // namespace tbr
