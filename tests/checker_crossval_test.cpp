// Cross-validation: on thousands of randomly generated small histories the
// fast SwmrChecker and the exhaustive Wing-Gong oracle must agree exactly.
// Generated histories deliberately include legal and illegal ones: reads are
// given indices from a window around plausibility so both verdicts occur.
#include <gtest/gtest.h>

#include "checker/swmr_checker.hpp"
#include "checker/wg_checker.hpp"
#include "common/rng.hpp"

namespace tbr {
namespace {

const Value kInit = Value::from_int64(0);

struct GeneratedHistory {
  std::vector<OpRecord> ops;
};

// Generate a random single-writer history: the writer performs sequential
// writes 1..W; readers perform reads whose intervals land anywhere and whose
// reported indices are sampled from [0, W] (sometimes deliberately wrong).
GeneratedHistory generate(Rng& rng) {
  HistoryLog log;
  const int writes = static_cast<int>(rng.uniform(0, 4));
  const int readers = static_cast<int>(rng.uniform(1, 3));
  const int reads_per_reader = static_cast<int>(rng.uniform(1, 3));

  Tick t = 0;
  struct WriteSpan {
    Tick start, end;
  };
  std::vector<WriteSpan> spans;
  for (int k = 1; k <= writes; ++k) {
    const Tick start = t + rng.uniform(1, 20);
    const Tick end = start + rng.uniform(1, 40);
    spans.push_back({start, end});
    t = end;
  }
  const bool last_incomplete = writes > 0 && rng.chance(0.3);

  // Writer ops must be recorded in start order mixed with reader ops in any
  // order; HistoryLog orders are assigned at record time, so record
  // everything in global time order of their begin, interleaving ends.
  // Simpler: record writes first (their order fields only matter relative
  // to reads via tick comparison — but Stamp.order embeds record order!).
  // To keep order consistent with ticks, collect all begin/end events and
  // record them sorted by tick.
  struct Ev {
    Tick at;
    int kind;  // 0 = write begin, 1 = write end, 2 = read begin, 3 = read end
    int idx;   // write number or read slot
  };
  std::vector<Ev> events;
  for (int k = 0; k < writes; ++k) {
    events.push_back({spans[static_cast<size_t>(k)].start, 0, k});
    if (!(last_incomplete && k == writes - 1)) {
      events.push_back({spans[static_cast<size_t>(k)].end, 1, k});
    }
  }
  struct ReadSpec {
    ProcessId proc;
    Tick start, end;
    SeqNo index;
    bool complete;
  };
  std::vector<ReadSpec> readspecs;
  const Tick horizon = t + 50;
  for (int r = 0; r < readers; ++r) {
    Tick rt = rng.uniform(0, 15);
    for (int q = 0; q < reads_per_reader; ++q) {
      ReadSpec spec;
      spec.proc = static_cast<ProcessId>(r + 1);
      spec.start = rt + rng.uniform(0, 25);
      spec.end = spec.start + rng.uniform(1, 45);
      spec.index = rng.uniform(0, writes);  // any index, maybe illegal
      spec.complete = rng.chance(0.9);
      if (spec.end > horizon) spec.complete = false;
      readspecs.push_back(spec);
      rt = spec.end + rng.uniform(1, 10);
      if (!spec.complete) break;  // a crashed reader stops
    }
  }
  int slot = 0;
  for (const auto& spec : readspecs) {
    events.push_back({spec.start, 2, slot});
    if (spec.complete) events.push_back({spec.end, 3, slot});
    ++slot;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Ev& a, const Ev& b) { return a.at < b.at; });

  std::vector<HistoryLog::OpId> write_ids(static_cast<size_t>(writes));
  std::vector<HistoryLog::OpId> read_ids(readspecs.size());
  for (const auto& ev : events) {
    switch (ev.kind) {
      case 0:
        write_ids[static_cast<size_t>(ev.idx)] = log.begin_write(
            0, ev.at, ev.idx + 1, Value::from_int64(ev.idx + 1));
        break;
      case 1:
        log.end_write(write_ids[static_cast<size_t>(ev.idx)], ev.at);
        break;
      case 2:
        read_ids[static_cast<size_t>(ev.idx)] =
            log.begin_read(readspecs[static_cast<size_t>(ev.idx)].proc, ev.at);
        break;
      case 3: {
        const auto& spec = readspecs[static_cast<size_t>(ev.idx)];
        log.end_read(read_ids[static_cast<size_t>(ev.idx)], ev.at,
                     spec.index == 0 ? kInit : Value::from_int64(spec.index),
                     spec.index);
        break;
      }
      default:
        break;
    }
  }
  return {log.ops()};
}

class CheckerCrossValidation : public testing::TestWithParam<std::uint64_t> {
};

TEST_P(CheckerCrossValidation, FastCheckerAgreesWithWingGong) {
  Rng rng(GetParam());
  int accepted = 0;
  int rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const auto hist = generate(rng);
    if (hist.ops.size() > 20) continue;
    const bool fast_ok = SwmrChecker::check(hist.ops, kInit).ok;
    const bool wg_ok = wg_linearizable(hist.ops, kInit);
    EXPECT_EQ(fast_ok, wg_ok) << "disagreement on trial " << trial << " ("
                              << hist.ops.size() << " ops)";
    fast_ok ? ++accepted : ++rejected;
  }
  // The generator must produce a meaningful mix of verdicts.
  EXPECT_GT(accepted, 20);
  EXPECT_GT(rejected, 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerCrossValidation,
                         testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace tbr
