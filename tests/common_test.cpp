// Unit tests for the common kernel: Value, Rng, bits, contracts, TextTable.
#include <gtest/gtest.h>

#include <set>

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/value.hpp"

namespace tbr {
namespace {

// ---- Value -------------------------------------------------------------------

TEST(ValueTest, DefaultIsEmpty) {
  const Value v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.size_bits(), 0u);
}

TEST(ValueTest, Int64RoundTrip) {
  const std::vector<std::int64_t> cases = {
      0, 1, -1, 42, -123456789, std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t x : cases) {
    EXPECT_EQ(Value::from_int64(x).to_int64(), x) << x;
  }
}

TEST(ValueTest, Int64IsEightBytes) {
  EXPECT_EQ(Value::from_int64(7).size(), 8u);
  EXPECT_EQ(Value::from_int64(7).size_bits(), 64u);
}

TEST(ValueTest, ToInt64RejectsWrongSize) {
  EXPECT_THROW((void)Value::from_string("abc").to_int64(), ContractViolation);
}

TEST(ValueTest, StringRoundTrip) {
  const Value v = Value::from_string("hello register");
  EXPECT_EQ(v.to_string(), "hello register");
  EXPECT_EQ(v.size(), 14u);
}

TEST(ValueTest, EqualityComparesBytes) {
  EXPECT_EQ(Value::from_int64(5), Value::from_int64(5));
  EXPECT_NE(Value::from_int64(5), Value::from_int64(6));
  EXPECT_NE(Value::from_string("a"), Value());
}

TEST(ValueTest, FillerIsDeterministicAndSized) {
  const Value a = Value::filler(100, 1);
  const Value b = Value::filler(100, 1);
  const Value c = Value::filler(100, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 100u);
}

TEST(ValueTest, DebugStringForms) {
  EXPECT_EQ(Value::from_int64(42).debug_string(), "int:42");
  EXPECT_EQ(Value::from_string("abc").debug_string(), "str:abc");
  EXPECT_EQ(Value::filler(100).debug_string(), "bytes[100]");
}

// ---- Rng ----------------------------------------------------------------------

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(3, 3), 3);
}

TEST(RngTest, UniformRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW((void)rng.uniform(5, 4), ContractViolation);
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform(0, 1'000'000) != b.uniform(0, 1'000'000)) ++differences;
  }
  EXPECT_GT(differences, 40);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ExponentialRespectsCap) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.exponential(10.0, 50);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 50);
  }
}

TEST(RngTest, PickCoversElements) {
  Rng rng(5);
  const std::vector<int> items = {1, 2, 3};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.pick(items));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, PickEmptyThrows) {
  Rng rng(5);
  const std::vector<int> empty;
  EXPECT_THROW((void)rng.pick(empty), ContractViolation);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(11);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  auto copy = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, copy);
}

TEST(RngTest, ForkSeedsDiffer) {
  Rng rng(1);
  const auto a = rng.fork_seed();
  const auto b = rng.fork_seed();
  EXPECT_NE(a, b);
}

// ---- bits ------------------------------------------------------------------------

TEST(BitsTest, MinBitsUnsigned) {
  EXPECT_EQ(min_bits_unsigned(0), 1u);
  EXPECT_EQ(min_bits_unsigned(1), 1u);
  EXPECT_EQ(min_bits_unsigned(2), 2u);
  EXPECT_EQ(min_bits_unsigned(3), 2u);
  EXPECT_EQ(min_bits_unsigned(255), 8u);
  EXPECT_EQ(min_bits_unsigned(256), 9u);
  EXPECT_EQ(min_bits_unsigned(std::numeric_limits<std::uint64_t>::max()), 64u);
}

TEST(BitsTest, MinBitsSeqnoRejectsNegative) {
  EXPECT_THROW((void)min_bits_seqno(-1), ContractViolation);
  EXPECT_EQ(min_bits_seqno(1023), 10u);
}

TEST(BitsTest, PowSaturating) {
  EXPECT_EQ(pow_saturating(7, 0), 1u);
  EXPECT_EQ(pow_saturating(7, 2), 49u);
  EXPECT_EQ(pow_saturating(10, 5), 100000u);
  EXPECT_EQ(pow_saturating(2, 64), std::numeric_limits<std::uint64_t>::max());
}

TEST(BitsTest, BitsToBytesRoundsUp) {
  EXPECT_EQ(bits_to_bytes(0), 0u);
  EXPECT_EQ(bits_to_bytes(1), 1u);
  EXPECT_EQ(bits_to_bytes(8), 1u);
  EXPECT_EQ(bits_to_bytes(9), 2u);
}

// ---- contracts ---------------------------------------------------------------------

TEST(ContractsTest, EnsurePassesOnTrue) {
  EXPECT_NO_THROW(TBR_ENSURE(1 + 1 == 2, "math"));
}

TEST(ContractsTest, EnsureThrowsWithContext) {
  try {
    TBR_ENSURE(false, "custom note");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom note"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(ContractsTest, InvariantThrowsContractViolation) {
  EXPECT_THROW(TBR_INVARIANT(false, "lemma broke"), ContractViolation);
}

// ---- TextTable ------------------------------------------------------------------------

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"algo", "msgs"});
  t.add_row({"twobit", "42"});
  t.add_row({"abd-unbounded", "6"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| algo          | msgs |"), std::string::npos);
  EXPECT_NE(out.find("| twobit        | 42   |"), std::string::npos);
}

TEST(TextTableTest, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TextTableTest, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

TEST(TextTableTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_delta_units(2.0), "2.0 D");
}

}  // namespace
}  // namespace tbr
