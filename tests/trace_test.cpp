// Trace tests: the recorded protocol events must reproduce the paper's
// dissemination pattern exactly (Theorem 2's counting, hop by hop).
#include <gtest/gtest.h>

#include "core/twobit_codec.hpp"
#include "sim/trace.hpp"
#include "workload/sim_register_group.hpp"

namespace tbr {
namespace {

constexpr Tick kDelta = 1000;

SimRegisterGroup make_group(std::uint32_t n) {
  SimRegisterGroup::Options opt;
  opt.cfg.n = n;
  opt.cfg.t = (n - 1) / 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.delay = make_constant_delay(kDelta);
  return SimRegisterGroup(std::move(opt));
}

TEST(TraceTest, WriteDisseminationPattern) {
  auto group = make_group(3);
  TraceLog trace;
  group.net().set_trace(&trace);
  group.client().write_sync(Value::from_int64(10));
  group.settle();

  const auto sends = trace.of_kind(TraceEvent::Kind::kSend);
  // n(n-1) = 6 WRITE frames, all for value #1, all parity WRITE1.
  ASSERT_EQ(sends.size(), 6u);
  for (const auto& e : sends) {
    EXPECT_EQ(e.type, static_cast<std::uint8_t>(TwoBitType::kWrite1));
    EXPECT_EQ(e.debug_index, 1);
    EXPECT_TRUE(e.has_value);
  }
  // Hop 1: the writer's two frames at t=0; hop 2: the four forwards at Δ.
  EXPECT_EQ(sends[0].at, 0);
  EXPECT_EQ(sends[0].from, 0u);
  EXPECT_EQ(sends[1].at, 0);
  EXPECT_EQ(sends[1].from, 0u);
  for (std::size_t i = 2; i < 6; ++i) {
    EXPECT_EQ(sends[i].at, kDelta);
    EXPECT_NE(sends[i].from, 0u);
  }
  // Every frame is delivered (no drops), by 2Δ.
  const auto delivers = trace.of_kind(TraceEvent::Kind::kDeliver);
  ASSERT_EQ(delivers.size(), 6u);
  EXPECT_TRUE(trace.of_kind(TraceEvent::Kind::kDrop).empty());
  EXPECT_EQ(delivers.back().at, 2 * kDelta);
}

TEST(TraceTest, ParityAlternatesAcrossWrites) {
  auto group = make_group(3);
  TraceLog trace;
  group.net().set_trace(&trace);
  group.client().write_sync(Value::from_int64(1));
  group.settle();
  group.client().write_sync(Value::from_int64(2));
  group.settle();
  group.client().write_sync(Value::from_int64(3));
  group.settle();

  for (const auto& e : trace.of_kind(TraceEvent::Kind::kSend)) {
    if (e.type > 1) continue;  // only WRITE frames carry parity
    // WRITE1 for odd indices, WRITE0 for even: the alternating bit.
    EXPECT_EQ(e.type, static_cast<std::uint8_t>(e.debug_index % 2))
        << "value #" << e.debug_index;
  }
}

TEST(TraceTest, ReadHandshakeSequence) {
  auto group = make_group(3);
  TraceLog trace;
  group.client().write_sync(Value::from_int64(1));
  group.settle();
  group.net().set_trace(&trace);
  group.client().read_sync(2);
  group.settle();

  const auto sends = trace.of_kind(TraceEvent::Kind::kSend);
  ASSERT_EQ(sends.size(), 4u);  // 2 READ out, 2 PROCEED back
  EXPECT_EQ(sends[0].type, static_cast<std::uint8_t>(TwoBitType::kRead));
  EXPECT_EQ(sends[1].type, static_cast<std::uint8_t>(TwoBitType::kRead));
  EXPECT_EQ(sends[2].type, static_cast<std::uint8_t>(TwoBitType::kProceed));
  EXPECT_EQ(sends[3].type, static_cast<std::uint8_t>(TwoBitType::kProceed));
  for (const auto& e : sends) EXPECT_FALSE(e.has_value);
}

TEST(TraceTest, CrashAndDropRecorded) {
  auto group = make_group(3);
  TraceLog trace;
  group.net().set_trace(&trace);
  group.crash(2);
  group.client().write_sync(Value::from_int64(1));
  group.settle();

  const auto crashes = trace.of_kind(TraceEvent::Kind::kCrash);
  ASSERT_EQ(crashes.size(), 1u);
  EXPECT_EQ(crashes[0].from, 2u);
  // Frames addressed to the dead process are recorded as drops.
  EXPECT_FALSE(trace.of_kind(TraceEvent::Kind::kDrop).empty());
}

TEST(TraceTest, RenderContainsTypeNamesAndTimes) {
  auto group = make_group(3);
  TraceLog trace;
  group.net().set_trace(&trace);
  group.client().write_sync(Value::from_int64(1));
  group.settle();
  const auto text = trace.render(twobit_codec(), kDelta);
  EXPECT_NE(text.find("WRITE1"), std::string::npos);
  EXPECT_NE(text.find("send"), std::string::npos);
  EXPECT_NE(text.find("deliver"), std::string::npos);
  EXPECT_NE(text.find("[value #1]"), std::string::npos);
  EXPECT_NE(text.find("1.00D"), std::string::npos);
}

TEST(TraceTest, DetachStopsRecording) {
  auto group = make_group(3);
  TraceLog trace;
  group.net().set_trace(&trace);
  group.client().write_sync(Value::from_int64(1));
  group.settle();
  const auto before = trace.size();
  group.net().set_trace(nullptr);
  group.client().write_sync(Value::from_int64(2));
  group.settle();
  EXPECT_EQ(trace.size(), before);
}

}  // namespace
}  // namespace tbr
