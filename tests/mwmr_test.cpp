// Tests for the MWMR extension: multi-writer ABD over the simulator, with
// the timestamp checker on every run and Wing-Gong cross-validation on
// small histories.
#include <gtest/gtest.h>

#include "checker/wg_checker.hpp"
#include "mwmr/mwmr_checker.hpp"
#include "mwmr/mwmr_process.hpp"
#include "sim/fault_plan.hpp"
#include "sim/sim_network.hpp"

namespace tbr {
namespace {

GroupConfig make_cfg(std::uint32_t n, std::uint32_t t) {
  GroupConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.writer = 0;  // unused by MWMR; required by GroupConfig
  cfg.initial = Value::from_int64(0);
  return cfg;
}

struct MwmrGroup {
  explicit MwmrGroup(std::uint32_t n, std::uint32_t t, std::uint64_t seed = 1,
                     std::unique_ptr<DelayModel> delay = nullptr) {
    cfg = make_cfg(n, t);
    std::vector<std::unique_ptr<ProcessBase>> procs;
    for (ProcessId pid = 0; pid < n; ++pid) {
      procs.push_back(make_mwmr_process(cfg, pid));
    }
    SimNetwork::Options opt;
    opt.seed = seed;
    opt.delay = delay ? std::move(delay) : make_constant_delay(1000);
    net = std::make_unique<SimNetwork>(std::move(procs), std::move(opt));
  }

  MwmrProcess& proc(ProcessId pid) {
    return net->process_as<MwmrProcess>(pid);
  }

  SeqNo write(ProcessId pid, std::int64_t v) {
    SeqNo ts = -1;
    proc(pid).start_write(net->context(pid), Value::from_int64(v),
                          [&ts](SeqNo t) { ts = t; });
    TBR_ENSURE(net->run_until([&] { return ts >= 0; }), "write stuck");
    return ts;
  }

  std::pair<std::int64_t, SeqNo> read(ProcessId pid) {
    std::optional<std::pair<std::int64_t, SeqNo>> out;
    proc(pid).start_read(net->context(pid),
                         [&out](const Value& v, SeqNo ts) {
                           out = {v.to_int64(), ts};
                         });
    TBR_ENSURE(net->run_until([&] { return out.has_value(); }), "read stuck");
    return *out;
  }

  GroupConfig cfg;
  std::unique_ptr<SimNetwork> net;
};

// ---- timestamp packing -------------------------------------------------------

TEST(MwmrTimestamps, PackPreservesLexicographicOrder) {
  EXPECT_LT(pack_ts(1, 5), pack_ts(2, 0));
  EXPECT_LT(pack_ts(1, 0), pack_ts(1, 1));
  EXPECT_EQ(ts_seq(pack_ts(7, 3)), 7);
  EXPECT_EQ(ts_writer(pack_ts(7, 3)), 3u);
}

// ---- functional ----------------------------------------------------------------

TEST(MwmrBasic, AnyProcessCanWrite) {
  MwmrGroup g(5, 2);
  g.write(3, 30);
  EXPECT_EQ(g.read(1).first, 30);
  g.write(4, 40);
  EXPECT_EQ(g.read(0).first, 40);
  g.write(0, 50);
  EXPECT_EQ(g.read(2).first, 50);
}

TEST(MwmrBasic, TimestampsGrowAcrossWriters) {
  MwmrGroup g(5, 2);
  const SeqNo a = g.write(1, 10);
  const SeqNo b = g.write(2, 20);
  const SeqNo c = g.write(1, 30);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(ts_writer(a), 1u);
  EXPECT_EQ(ts_writer(b), 2u);
}

TEST(MwmrBasic, InitialValueReadable) {
  MwmrGroup g(3, 1);
  const auto [v, ts] = g.read(2);
  EXPECT_EQ(v, 0);
  EXPECT_EQ(ts, 0);
}

TEST(MwmrBasic, SurvivesMinorityCrash) {
  MwmrGroup g(5, 2);
  g.write(1, 11);
  g.net->crash_now(3);
  g.net->crash_now(4);
  g.write(2, 22);
  EXPECT_EQ(g.read(0).first, 22);
}

TEST(MwmrBasic, LastWriterWinsOnConcurrentWrites) {
  // Two concurrent writes: the register converges on the higher timestamp.
  MwmrGroup g(5, 2);
  SeqNo ts1 = -1, ts2 = -1;
  g.proc(1).start_write(g.net->context(1), Value::from_int64(100),
                        [&](SeqNo t) { ts1 = t; });
  g.proc(2).start_write(g.net->context(2), Value::from_int64(200),
                        [&](SeqNo t) { ts2 = t; });
  ASSERT_TRUE(g.net->run());
  ASSERT_GE(ts1, 0);
  ASSERT_GE(ts2, 0);
  EXPECT_NE(ts1, ts2);  // packed timestamps never collide
  const auto [v, ts] = g.read(0);
  EXPECT_EQ(ts, std::max(ts1, ts2));
  EXPECT_EQ(v, ts == ts1 ? 100 : 200);
}

TEST(MwmrBasic, SequentialContractEnforced) {
  MwmrGroup g(3, 1);
  g.proc(1).start_write(g.net->context(1), Value::from_int64(1),
                        [](SeqNo) {});
  EXPECT_THROW(
      g.proc(1).start_read(g.net->context(1), [](const Value&, SeqNo) {}),
      ContractViolation);
}

// ---- checker unit behaviour ------------------------------------------------------

TEST(MwmrCheckerTest, AcceptsCleanHistory) {
  HistoryLog log;
  auto w1 = log.begin_write_unindexed(1, 0, Value::from_int64(10));
  log.end_write_indexed(w1, 10, pack_ts(1, 1));
  auto r1 = log.begin_read(2, 20);
  log.end_read(r1, 30, Value::from_int64(10), pack_ts(1, 1));
  EXPECT_TRUE(MwmrChecker::check(log.ops(), Value::from_int64(0)).ok);
}

TEST(MwmrCheckerTest, RejectsStaleRead) {
  HistoryLog log;
  auto w1 = log.begin_write_unindexed(1, 0, Value::from_int64(10));
  log.end_write_indexed(w1, 10, pack_ts(1, 1));
  auto r1 = log.begin_read(2, 20);
  log.end_read(r1, 30, Value::from_int64(0), 0);  // returns the initial value
  const auto verdict = MwmrChecker::check(log.ops(), Value::from_int64(0));
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.error.find("W-R"), std::string::npos);
}

TEST(MwmrCheckerTest, RejectsInversion) {
  HistoryLog log;
  auto w1 = log.begin_write_unindexed(1, 0, Value::from_int64(10));
  log.end_write_indexed(w1, 5, pack_ts(1, 1));
  auto w2 = log.begin_write_unindexed(1, 10, Value::from_int64(20));
  log.end_write_indexed(w2, 100, pack_ts(2, 1));  // long write, overlaps reads
  // Hmm: w2 [10,100]; r1 [20,30] sees new, r2 [40,50] sees old.
  auto r1 = log.begin_read(2, 20);
  log.end_read(r1, 30, Value::from_int64(20), pack_ts(2, 1));
  auto r2 = log.begin_read(3, 40);
  log.end_read(r2, 50, Value::from_int64(10), pack_ts(1, 1));
  const auto verdict = MwmrChecker::check(log.ops(), Value::from_int64(0));
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.error.find("R-R"), std::string::npos);
}

TEST(MwmrCheckerTest, RejectsWriteBehindObservedRead) {
  HistoryLog log;
  auto r1 = log.begin_read(2, 0);
  log.end_read(r1, 10, Value::from_int64(10), pack_ts(5, 1));
  // The read observed ts (5,1); a later write installing a smaller ts is
  // impossible under timestamp order.
  auto w = log.begin_write_unindexed(3, 20, Value::from_int64(10));
  log.end_write_indexed(w, 30, pack_ts(5, 1 - 1));
  const auto verdict = MwmrChecker::check(log.ops(), Value::from_int64(0));
  EXPECT_FALSE(verdict.ok);
}

TEST(MwmrCheckerTest, AllowsReadOfIncompleteWriteByValue) {
  HistoryLog log;
  (void)log.begin_write_unindexed(1, 0, Value::from_int64(10));  // crashes
  auto r1 = log.begin_read(2, 20);
  log.end_read(r1, 30, Value::from_int64(10), pack_ts(1, 1));
  EXPECT_TRUE(MwmrChecker::check(log.ops(), Value::from_int64(0)).ok);
}

TEST(MwmrCheckerTest, RejectsDuplicateTimestamps) {
  HistoryLog log;
  auto w1 = log.begin_write_unindexed(1, 0, Value::from_int64(10));
  log.end_write_indexed(w1, 10, pack_ts(1, 1));
  auto w2 = log.begin_write_unindexed(2, 20, Value::from_int64(20));
  log.end_write_indexed(w2, 30, pack_ts(1, 1));
  EXPECT_FALSE(MwmrChecker::check(log.ops(), Value::from_int64(0)).ok);
}

// ---- property: random concurrent workloads ------------------------------------------

struct MwmrDriver {
  MwmrGroup& g;
  HistoryLog log;
  Rng rng;
  std::vector<std::uint32_t> remaining;
  std::int64_t next_value = 1;

  MwmrDriver(MwmrGroup& group, std::uint64_t seed, std::uint32_t quota)
      : g(group), rng(seed), remaining(group.cfg.n, quota) {}

  void kick(ProcessId pid) {
    g.net->schedule_after(rng.uniform(0, 400), [this, pid] { issue(pid); });
  }

  void issue(ProcessId pid) {
    if (g.net->crashed(pid) || remaining[pid] == 0) return;
    remaining[pid] -= 1;
    const Tick now = g.net->now();
    if (rng.chance(0.4)) {
      const std::int64_t v = next_value++;
      const auto id = log.begin_write_unindexed(pid, now,
                                                Value::from_int64(v));
      g.proc(pid).start_write(g.net->context(pid), Value::from_int64(v),
                              [this, pid, id](SeqNo ts) {
                                log.end_write_indexed(id, g.net->now(), ts);
                                kick(pid);
                              });
    } else {
      const auto id = log.begin_read(pid, now);
      g.proc(pid).start_read(g.net->context(pid),
                             [this, pid, id](const Value& v, SeqNo ts) {
                               log.end_read(id, g.net->now(), v, ts);
                               kick(pid);
                             });
    }
  }
};

class MwmrLinearizability : public testing::TestWithParam<std::uint64_t> {};

TEST_P(MwmrLinearizability, ConcurrentMultiWriterHistoryIsAtomic) {
  const auto seed = GetParam();
  MwmrGroup g(5, 2, seed, make_uniform_delay(1, 1200));
  MwmrDriver driver(g, seed ^ 0xABCD, 14);
  for (ProcessId pid = 0; pid < 5; ++pid) driver.kick(pid);
  if (seed % 2 == 0) {
    Rng fault_rng(seed ^ 0xFA117);
    FaultPlan::random(fault_rng, g.cfg, 2, 20'000, true).install(*g.net);
  }
  ASSERT_TRUE(g.net->run());
  const auto verdict =
      MwmrChecker::check(driver.log.ops(), Value::from_int64(0));
  EXPECT_TRUE(verdict.ok) << verdict.error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwmrLinearizability,
                         testing::Range<std::uint64_t>(0, 24));

// ---- Wing-Gong cross-validation on small histories -----------------------------------

class MwmrWgCrossval : public testing::TestWithParam<std::uint64_t> {};

TEST_P(MwmrWgCrossval, SmallHistoriesAgreeWithOracle) {
  const auto seed = GetParam();
  MwmrGroup g(3, 1, seed, make_uniform_delay(1, 900));
  MwmrDriver driver(g, seed ^ 0x5EED, 3);  // <= 9 ops total
  for (ProcessId pid = 0; pid < 3; ++pid) driver.kick(pid);
  ASSERT_TRUE(g.net->run());
  const auto ops = driver.log.ops();
  const auto verdict = MwmrChecker::check(ops, Value::from_int64(0));
  ASSERT_LE(ops.size(), 18u);
  const bool oracle = wg_linearizable(ops, Value::from_int64(0));
  EXPECT_TRUE(verdict.ok) << verdict.error;
  EXPECT_TRUE(oracle);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwmrWgCrossval,
                         testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace tbr
