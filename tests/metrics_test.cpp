// Unit tests for the measurement instruments: MessageStats and Histogram.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "metrics/histogram.hpp"
#include "metrics/message_stats.hpp"

namespace tbr {
namespace {

// ---- MessageStats ---------------------------------------------------------------

TEST(MessageStatsTest, StartsEmpty) {
  const MessageStats s;
  EXPECT_EQ(s.total_sent(), 0u);
  EXPECT_EQ(s.total_dropped(), 0u);
  EXPECT_EQ(s.total_control_bits(), 0u);
  EXPECT_EQ(s.total_data_bits(), 0u);
  EXPECT_EQ(s.max_control_bits_per_msg(), 0u);
}

TEST(MessageStatsTest, RecordsSendsByType) {
  MessageStats s;
  s.record_send(0, {2, 64});
  s.record_send(0, {2, 64});
  s.record_send(3, {2, 0});
  EXPECT_EQ(s.total_sent(), 3u);
  EXPECT_EQ(s.sent_of_type(0), 2u);
  EXPECT_EQ(s.sent_of_type(3), 1u);
  EXPECT_EQ(s.sent_of_type(7), 0u);
  EXPECT_EQ(s.total_control_bits(), 6u);
  EXPECT_EQ(s.total_data_bits(), 128u);
}

TEST(MessageStatsTest, TracksMaxControlBits) {
  MessageStats s;
  s.record_send(0, {2, 0});
  s.record_send(1, {970299, 0});  // an O(n^5)-style label frame
  s.record_send(2, {35, 0});
  EXPECT_EQ(s.max_control_bits_per_msg(), 970299u);
}

TEST(MessageStatsTest, RecordsDrops) {
  MessageStats s;
  s.record_drop(1);
  s.record_drop(1);
  EXPECT_EQ(s.total_dropped(), 2u);
  EXPECT_EQ(s.total_sent(), 0u);
}

TEST(MessageStatsTest, DiffSinceSnapshot) {
  MessageStats s;
  s.record_send(0, {2, 10});
  const auto snap = s.snapshot();
  s.record_send(0, {2, 10});
  s.record_send(1, {3, 0});
  const auto delta = s.diff_since(snap);
  EXPECT_EQ(delta.total_sent(), 2u);
  EXPECT_EQ(delta.sent_of_type(0), 1u);
  EXPECT_EQ(delta.sent_of_type(1), 1u);
  EXPECT_EQ(delta.total_control_bits(), 5u);
}

TEST(MessageStatsTest, DiffRequiresEarlierSnapshot) {
  MessageStats a, b;
  b.record_send(0, {2, 0});
  EXPECT_THROW((void)a.diff_since(b), ContractViolation);
}

TEST(MessageStatsTest, TypeIdRangeChecked) {
  MessageStats s;
  EXPECT_THROW(s.record_send(16, {1, 0}), ContractViolation);
  EXPECT_THROW((void)s.sent_of_type(16), ContractViolation);
}

TEST(MessageStatsTest, ResetClearsEverything) {
  MessageStats s;
  s.record_send(0, {2, 10});
  s.reset();
  EXPECT_EQ(s.total_sent(), 0u);
  EXPECT_EQ(s.max_control_bits_per_msg(), 0u);
}

// ---- Histogram -----------------------------------------------------------------

TEST(HistogramTest, EmptyBehaviour) {
  const Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_THROW((void)h.min(), ContractViolation);
  EXPECT_EQ(h.summary(), "(no samples)");
}

TEST(HistogramTest, MinMeanMax) {
  Histogram h;
  for (const auto v : {5, 1, 9, 3}) h.add(v);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 9);
  EXPECT_DOUBLE_EQ(h.mean(), 4.5);
}

TEST(HistogramTest, PercentileNearestRank) {
  Histogram h;
  for (int v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.percentile(50), 50);
  EXPECT_EQ(h.percentile(99), 99);
  EXPECT_EQ(h.percentile(100), 100);
  EXPECT_EQ(h.percentile(0), 1);
}

TEST(HistogramTest, PercentileRangeChecked) {
  Histogram h;
  h.add(1);
  EXPECT_THROW((void)h.percentile(-1), ContractViolation);
  EXPECT_THROW((void)h.percentile(101), ContractViolation);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.add(7);
  EXPECT_EQ(h.percentile(50), 7);
  EXPECT_EQ(h.min(), 7);
  EXPECT_EQ(h.max(), 7);
}

TEST(HistogramTest, SummaryScalesByUnit) {
  Histogram h;
  h.add(2000);
  h.add(4000);
  EXPECT_EQ(h.summary(1000.0, 1), "2.0/2.0/4.0/4.0");
}

TEST(HistogramTest, AddAfterQueryStaysSorted) {
  Histogram h;
  h.add(10);
  EXPECT_EQ(h.max(), 10);
  h.add(5);
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 10);
}

}  // namespace
}  // namespace tbr
