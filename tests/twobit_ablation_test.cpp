// Wait-ablation suite: each `wait` in Fig. 1 maps to a specific atomicity
// claim. Removing a wait must (a) leave the other claims intact and
// (b) demonstrably break its own claim on adversarial schedules. The
// violation-counting checker (SwmrChecker::analyze) measures both.
//
//   line 9  (reader's second quorum)  -> Claim 3 (no new/old inversion)
//   line 20 (responder freshness)     -> Claim 2 (no stale read)
//   ABD read write-back phase         -> Claim 3 for the ABD baseline
#include <gtest/gtest.h>

#include "abd/phased_process.hpp"
#include "core/twobit_process.hpp"
#include "workload/adversarial.hpp"
#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

using Factory = std::function<std::unique_ptr<RegisterProcessBase>(
    const GroupConfig&, ProcessId)>;

CheckStats run_and_analyze(const Factory& factory, std::uint64_t seed,
                           std::uint32_t n = 5) {
  SimWorkloadOptions opt;
  opt.cfg.n = n;
  opt.cfg.t = (n - 1) / 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;  // informational; factory decides
  opt.seed = seed;
  opt.ops_per_process = 24;
  opt.think_time_max = 120;  // hot: reads race the write pipeline
  opt.process_factory = factory;
  opt.delay_factory = [seed](const GroupConfig& cfg) {
    switch (seed % 3) {
      case 0:
        return make_uniform_delay(1, 1500);
      case 1:
        return make_flipflop_delay(3, 2200, cfg.n);
      default:
        return make_exponential_delay(400, 9000);
    }
  };
  const auto result = run_sim_workload(opt);
  EXPECT_TRUE(result.drained);
  return SwmrChecker::analyze(result.ops, opt.cfg.initial);
}

Factory twobit_factory(TwoBitOptions options) {
  return [options](const GroupConfig& cfg, ProcessId pid) {
    return std::make_unique<TwoBitProcess>(cfg, pid, options);
  };
}

CheckStats sweep(const Factory& factory, int seeds, std::uint32_t n = 5) {
  CheckStats total;
  for (int s = 0; s < seeds; ++s) {
    const auto stats =
        run_and_analyze(factory, static_cast<std::uint64_t>(s), n);
    total.model += stats.model;
    total.c0 += stats.c0;
    total.c1 += stats.c1;
    total.c2 += stats.c2;
    total.c3 += stats.c3;
    total.reads_checked += stats.reads_checked;
    if (total.first_error.empty()) total.first_error = stats.first_error;
  }
  return total;
}

TEST(WaitAblation, FaithfulAlgorithmHasZeroViolations) {
  const auto stats = sweep(twobit_factory({}), 12);
  EXPECT_EQ(stats.total(), 0u) << stats.first_error;
  EXPECT_GT(stats.reads_checked, 500u);
}

// Random schedules rarely align two sequential reads inside one write's
// dissemination window, so the "breaks its claim" direction uses the
// targeted adversarial scenarios (src/workload/adversarial.hpp); the random
// sweeps then confirm the *other* claims stay intact under the ablation.

TEST(WaitAblation, DroppingLine9CausesInversionOnTargetedSchedule) {
  TwoBitOptions ablated;
  ablated.skip_read_second_wait = true;
  const auto outcome = run_twobit_inversion_scenario(ablated);
  ASSERT_TRUE(outcome.both_completed);
  EXPECT_EQ(outcome.first_read_index, 2);   // fresh side saw the new value
  EXPECT_EQ(outcome.second_read_index, 1);  // stale side then read the old
  EXPECT_TRUE(outcome.inverted());
  EXPECT_GT(outcome.stats.c3, 0u) << outcome.stats.first_error;
  EXPECT_EQ(outcome.stats.c2, 0u);  // Claim 2 rests on lines 7/20: intact
}

TEST(WaitAblation, FaithfulLine9PreventsInversionOnSameSchedule) {
  const auto outcome = run_twobit_inversion_scenario(TwoBitOptions{});
  ASSERT_TRUE(outcome.both_completed);
  // Line 9 holds the fresh read open until the stale side catches up, so
  // the two reads overlap and no real-time order is violated.
  EXPECT_EQ(outcome.stats.total(), 0u) << outcome.stats.first_error;
}

TEST(WaitAblation, DroppingLine9OtherClaimsSurviveRandomSweep) {
  TwoBitOptions options;
  options.skip_read_second_wait = true;
  const auto stats = sweep(twobit_factory(options), 20);
  // The other claims rest on lines 7/20 and Lemma 2, which are untouched.
  EXPECT_EQ(stats.model, 0u);
  EXPECT_EQ(stats.c0, 0u);
  EXPECT_EQ(stats.c1, 0u);
  EXPECT_EQ(stats.c2, 0u) << stats.first_error;
}

TEST(WaitAblation, DroppingLine20CausesStaleReadOnTargetedSchedule) {
  TwoBitOptions ablated;
  ablated.eager_proceed = true;
  const auto outcome = run_twobit_stale_read_scenario(ablated);
  ASSERT_TRUE(outcome.both_completed);
  EXPECT_EQ(outcome.second_read_index, 1)
      << "the read should have missed the completed write";
  EXPECT_GT(outcome.stats.c2, 0u) << outcome.stats.first_error;
}

TEST(WaitAblation, FaithfulLine20PreventsStaleReadOnSameSchedule) {
  const auto outcome = run_twobit_stale_read_scenario(TwoBitOptions{});
  ASSERT_TRUE(outcome.both_completed);
  EXPECT_EQ(outcome.second_read_index, 2);
  EXPECT_EQ(outcome.stats.total(), 0u) << outcome.stats.first_error;
}

TEST(WaitAblation, DroppingLine20OtherClaimsSurviveRandomSweep) {
  TwoBitOptions options;
  options.eager_proceed = true;
  const auto stats = sweep(twobit_factory(options), 20);
  EXPECT_EQ(stats.model, 0u);
  EXPECT_EQ(stats.c0, 0u);
  EXPECT_EQ(stats.c1, 0u);
}

TEST(WaitAblation, RegularAbdInvertsOnTargetedSchedule) {
  const auto outcome = run_abd_inversion_scenario(/*regular=*/true);
  ASSERT_TRUE(outcome.both_completed);
  EXPECT_EQ(outcome.first_read_index, 2);
  EXPECT_EQ(outcome.second_read_index, 1);
  EXPECT_GT(outcome.stats.c3, 0u) << outcome.stats.first_error;
  EXPECT_EQ(outcome.stats.c2, 0u);  // regular: still never stale
}

TEST(WaitAblation, FaithfulAbdWriteBackPreventsInversion) {
  const auto outcome = run_abd_inversion_scenario(/*regular=*/false);
  ASSERT_TRUE(outcome.both_completed);
  EXPECT_EQ(outcome.stats.total(), 0u) << outcome.stats.first_error;
}

TEST(WaitAblation, RegularAbdIsRegularOnRandomSweep) {
  const Factory factory = [](const GroupConfig& cfg, ProcessId pid) {
    return make_abd_regular_process(cfg, pid);
  };
  const auto stats = sweep(factory, 20);
  // Lamport-regular: never stale, never from the future.
  EXPECT_EQ(stats.model, 0u);
  EXPECT_EQ(stats.c0, 0u);
  EXPECT_EQ(stats.c1, 0u);
  EXPECT_EQ(stats.c2, 0u) << stats.first_error;
}

TEST(WaitAblation, FullAbdSweepStaysAtomic) {
  const Factory factory = [](const GroupConfig& cfg, ProcessId pid) {
    return make_abd_unbounded_process(cfg, pid);
  };
  const auto stats = sweep(factory, 12);
  EXPECT_EQ(stats.total(), 0u) << stats.first_error;
}

TEST(WaitAblation, RegularAbdStillSatisfiesRegularPredicate) {
  const Factory factory = [](const GroupConfig& cfg, ProcessId pid) {
    return make_abd_regular_process(cfg, pid);
  };
  for (std::uint64_t s = 0; s < 8; ++s) {
    const auto stats = run_and_analyze(factory, s);
    EXPECT_TRUE(stats.regular()) << stats.first_error;
  }
}

TEST(WaitAblation, AnalyzeCountsMatchCheckVerdict) {
  // analyze() and check() must agree on the faithful algorithm and on the
  // broken variants.
  TwoBitOptions broken;
  broken.skip_read_second_wait = true;
  for (std::uint64_t s = 0; s < 6; ++s) {
    SimWorkloadOptions opt;
    opt.cfg.n = 5;
    opt.cfg.t = 2;
    opt.cfg.writer = 0;
    opt.cfg.initial = Value::from_int64(0);
    opt.seed = s;
    opt.ops_per_process = 20;
    opt.think_time_max = 120;
    opt.process_factory = twobit_factory(broken);
    opt.delay_factory = [](const GroupConfig& cfg) {
      return make_flipflop_delay(3, 2200, cfg.n);
    };
    const auto result = run_sim_workload(opt);
    const auto stats = SwmrChecker::analyze(result.ops, opt.cfg.initial);
    const auto verdict = SwmrChecker::check(result.ops, opt.cfg.initial);
    EXPECT_EQ(stats.atomic(), verdict.ok);
    if (!verdict.ok) {
      EXPECT_EQ(verdict.error, stats.first_error);
    }
  }
}

}  // namespace
}  // namespace tbr
