// The headline property suite: atomicity (Lemma 10 / Theorem 1) of the
// two-bit register under hundreds of seeded adversarial schedules —
// randomized delays, forced channel reordering, stragglers, minority
// crashes, writer crashes, and read-heavy contention.
#include <gtest/gtest.h>

#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

struct LinCase {
  std::uint32_t n;
  std::uint32_t t;
  std::uint32_t crashes;
  bool allow_writer_crash;
  const char* delay;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<LinCase>& info) {
  const auto& c = info.param;
  std::string name = "n" + std::to_string(c.n) + "t" + std::to_string(c.t) +
                     "c" + std::to_string(c.crashes);
  if (c.allow_writer_crash) name += "w";
  name += std::string("_") + c.delay + "_s" + std::to_string(c.seed);
  return name;
}

std::unique_ptr<DelayModel> make_delay(const std::string& kind,
                                       const GroupConfig& cfg) {
  if (kind == "const") return make_constant_delay(100);
  if (kind == "uniform") return make_uniform_delay(1, 1500);
  if (kind == "expo") return make_exponential_delay(300, 10'000);
  if (kind == "flipflop") return make_flipflop_delay(3, 2500, cfg.n);
  if (kind == "straggler") return make_straggler_delay(1, 4000, 5);
  TBR_ENSURE(false, "unknown delay kind");
  return nullptr;
}

class TwoBitLinearizability : public testing::TestWithParam<LinCase> {};

TEST_P(TwoBitLinearizability, HistoryIsAtomic) {
  const auto& c = GetParam();
  SimWorkloadOptions opt;
  opt.cfg.n = c.n;
  opt.cfg.t = c.t;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.seed = c.seed;
  opt.ops_per_process = 20;
  opt.writer_read_fraction = 0.3;
  opt.think_time_max = 400;
  opt.crashes = c.crashes;
  opt.allow_writer_crash = c.allow_writer_crash;
  opt.crash_horizon = 30'000;
  opt.delay_factory = [kind = std::string(c.delay)](const GroupConfig& cfg) {
    return make_delay(kind, cfg);
  };

  const auto result = run_sim_workload(opt);
  ASSERT_TRUE(result.drained) << "simulation hit the event budget";
  const auto check = result.check_atomicity(opt.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
  if (c.crashes == 0) {
    EXPECT_EQ(result.completed_by_correct, result.quota_of_correct)
        << "liveness: all ops of correct processes must finish";
  }
}

std::vector<LinCase> lin_cases() {
  std::vector<LinCase> cases;
  std::uint64_t seed = 1;
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> sizes = {
      {2, 0}, {3, 1}, {4, 1}, {5, 2}, {6, 2}, {7, 3}, {9, 4}, {11, 5}};
  const std::vector<const char*> delays = {"uniform", "flipflop", "expo"};
  // Failure-free sweeps: every size x delay model, 3 seeds each.
  for (const auto& [n, t] : sizes) {
    for (const auto* delay : delays) {
      for (int s = 0; s < 3; ++s) cases.push_back({n, t, 0, false, delay, seed++});
    }
  }
  // Crashy sweeps: reader crashes up to t.
  for (const auto& [n, t] : sizes) {
    if (t == 0) continue;
    for (const auto* delay : delays) {
      cases.push_back({n, t, t, false, delay, seed++});
    }
  }
  // Writer-crash sweeps.
  for (std::uint64_t s = 0; s < 12; ++s) {
    cases.push_back({5, 2, 2, true, "uniform", 1000 + s});
    cases.push_back({7, 3, 2, true, "flipflop", 2000 + s});
  }
  // Straggler-heavy runs (exercises Rule R2 catch-up aggressively).
  for (std::uint64_t s = 0; s < 8; ++s) {
    cases.push_back({5, 2, 0, false, "straggler", 3000 + s});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TwoBitLinearizability,
                         testing::ValuesIn(lin_cases()), case_name);

// Read-dominated contention: many readers hammering while the writer
// streams values — the workload the paper's conclusion markets the
// algorithm for (O(n) reads).
class TwoBitReadDominated : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoBitReadDominated, AtomicUnderReadHammer) {
  SimWorkloadOptions opt;
  opt.cfg.n = 9;
  opt.cfg.t = 4;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.seed = GetParam();
  opt.ops_per_process = 30;
  opt.think_time_max = 50;  // hot loop
  opt.delay_factory = [](const GroupConfig&) {
    return make_uniform_delay(1, 600);
  };
  const auto result = run_sim_workload(opt);
  ASSERT_TRUE(result.drained);
  const auto check = result.check_atomicity(opt.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(result.completed_by_correct, result.quota_of_correct);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoBitReadDominated,
                         testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace tbr
