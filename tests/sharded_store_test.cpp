// Sharded KV engine (src/kvstore): router placement, end-to-end store
// semantics across shard boundaries, deterministic batching semantics at
// the MuxProcess level (read coalescing, last-write-wins absorption, chain
// order), and crash isolation between shards.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "kvstore/shard_router.hpp"
#include "kvstore/sharded_store.hpp"

namespace tbr {
namespace {

// ---- router ----------------------------------------------------------------

TEST(ShardRouter, PlacementIsStableAndConsistent) {
  ShardRouter router(4, 16, 3);
  for (int k = 0; k < 64; ++k) {
    const std::string key = "key-" + std::to_string(k);
    const auto a = router.place(key);
    const auto b = router.place(key);
    EXPECT_EQ(a.shard, b.shard);
    EXPECT_EQ(a.slot, b.slot);
    EXPECT_EQ(a.home, b.home);
    EXPECT_LT(a.shard, 4u);
    EXPECT_LT(a.slot, 16u);
    EXPECT_EQ(a.home, a.slot % 3);
  }
}

// Regression: raw FNV-1a's high half is nearly constant for short similar
// keys — before the avalanche finalizer, "key-0".."key-255" left entire
// shards empty (0 of 256 keys on shard 3 of 4).
TEST(ShardRouter, ShortSequentialKeysSpreadOverAllShards) {
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    ShardRouter router(shards, 16, 3);
    std::vector<int> per_shard(shards, 0);
    for (int k = 0; k < 256; ++k) {
      per_shard[router.shard_of("key-" + std::to_string(k))] += 1;
    }
    for (std::uint32_t s = 0; s < shards; ++s) {
      // Fair share is 256/shards; require at least a third of it.
      EXPECT_GE(per_shard[s], static_cast<int>(256 / shards / 3))
          << "shard " << s << " of " << shards << " starved";
    }
  }
}

// ---- store end-to-end -------------------------------------------------------

ShardedKvStore::Options small_store(std::uint32_t shards = 4,
                                    std::uint64_t seed = 1) {
  ShardedKvStore::Options opt;
  opt.shards = shards;
  opt.n = 3;
  opt.t = 1;
  opt.slots_per_shard = 8;
  opt.seed = seed;
  return opt;
}

TEST(ShardedKvStore, PutThenGetAtEveryReplica) {
  ShardedKvStore store(small_store());
  store.client().put_sync("alpha", Value::from_string("1"));
  for (ProcessId pid = 0; pid < store.node_count(); ++pid) {
    const auto got = store.client().get_sync("alpha", pid);
    EXPECT_EQ(got.value.to_string(), "1") << "replica " << pid;
    EXPECT_EQ(got.version, 1);
  }
}

TEST(ShardedKvStore, UnwrittenKeyReturnsInitial) {
  auto opt = small_store();
  opt.initial = Value::from_string("<default>");
  ShardedKvStore store(std::move(opt));
  const auto got = store.client().get_sync("never-written");
  EXPECT_EQ(got.value.to_string(), "<default>");
  EXPECT_EQ(got.version, 0);
}

TEST(ShardedKvStore, SequentialOverwritesBumpVersions) {
  ShardedKvStore store(small_store());
  for (int k = 1; k <= 10; ++k) {
    const auto put = store.client().put_sync("counter", Value::from_int64(k));
    EXPECT_EQ(put.version, k);
    EXPECT_FALSE(put.absorbed) << "awaited puts are never absorbed";
    const auto got = store.client().get_sync("counter");
    EXPECT_EQ(got.value.to_int64(), k);
    EXPECT_EQ(got.version, k);
  }
}

TEST(ShardedKvStore, KeysInDifferentShardsAreIndependent) {
  ShardedKvStore store(small_store());
  // Find two keys in different shards.
  std::string a = "a-key", b;
  for (int k = 0; b.empty() && k < 1000; ++k) {
    const std::string candidate = "b-key-" + std::to_string(k);
    if (store.router().shard_of(candidate) != store.router().shard_of(a)) {
      b = candidate;
    }
  }
  ASSERT_FALSE(b.empty());
  store.client().put_sync(a, Value::from_string("va"));
  store.client().put_sync(b, Value::from_string("vb"));
  store.client().put_sync(a, Value::from_string("va2"));
  EXPECT_EQ(store.client().get_sync(a).value.to_string(), "va2");
  EXPECT_EQ(store.client().get_sync(a).version, 2);
  EXPECT_EQ(store.client().get_sync(b).value.to_string(), "vb");
  EXPECT_EQ(store.client().get_sync(b).version, 1) << "b's shard never saw a's writes";
}

TEST(ShardedKvStore, AsyncBurstResolvesEverythingLastValueWins) {
  ShardedKvStore store(small_store());
  std::vector<Ticket> puts;
  for (int k = 1; k <= 32; ++k) {
    puts.push_back(store.client().put("hot", Value::from_int64(k)));
  }
  SeqNo max_version = 0;
  for (const Ticket& t : puts) {
    const OpResult done = store.client().wait(t);
    EXPECT_TRUE(done.status.ok()) << done.status.message();
    EXPECT_GE(done.version, 1);
    max_version = std::max(max_version, done.version);
  }
  const auto got = store.client().get_sync("hot");
  // However the burst landed in windows, the LAST queued value survives
  // and the final version is the number of protocol writes issued.
  EXPECT_EQ(got.value.to_int64(), 32);
  EXPECT_EQ(got.version, max_version);
  const auto stats = store.batch_stats();
  EXPECT_EQ(stats.protocol_writes + stats.absorbed_writes, 32u);
}

TEST(ShardedKvStore, CrashedHomeRefusesPutsKeysStayReadable) {
  ShardedKvStore store(small_store());
  store.client().put_sync("victim", Value::from_string("before"));
  const auto at = store.router().place("victim");
  store.crash(at.shard, at.home);
  store.drain();

  EXPECT_EQ(store.client()
                .put_sync("victim", Value::from_string("after"))
                .status.code(),
            StatusCode::kCrashed);
  // Reads are quorum ops at the surviving replicas.
  const ProcessId other = (at.home + 1) % store.node_count();
  EXPECT_EQ(store.client().get_sync("victim", other).value.to_string(), "before");
  // Reading AT the corpse is refused.
  EXPECT_EQ(store.client().get_sync("victim", at.home).status.code(),
            StatusCode::kCrashed);

  // Every other shard never noticed.
  for (int k = 0; k < 200; ++k) {
    const std::string key = "other-" + std::to_string(k);
    if (store.router().shard_of(key) == at.shard) continue;
    store.client().put_sync(key, Value::from_int64(k));
    EXPECT_EQ(store.client().get_sync(key).value.to_int64(), k);
    break;
  }
}

// Over-budget crashes (> t in one shard): the stalled batch fails its ops,
// the shard marks itself dead, and every later op fails fast — the stalled
// registers' one-op-at-a-time guard must never be re-entered (doing so
// would throw on the worker thread and abort the process).
TEST(ShardedKvStore, OverBudgetCrashesFailFastWithoutAborting) {
  ShardedKvStore store(small_store(/*shards=*/1));
  store.client().put_sync("warm", Value::from_int64(1));

  store.crash(0, 1);
  store.crash(0, 2);  // 2 > t = 1: no quorum left
  store.drain();

  // A key homed at the surviving replica is accepted into a batch, which
  // then stalls: the op fails over to the client.
  std::string stalled_key;
  for (int k = 0; stalled_key.empty() && k < 1000; ++k) {
    const std::string key = "k" + std::to_string(k);
    if (store.router().home_node(key) == 0) stalled_key = key;
  }
  ASSERT_FALSE(stalled_key.empty());
  EXPECT_EQ(store.client()
                .put_sync(stalled_key, Value::from_int64(2))
                .status.code(),
            StatusCode::kLivenessLost);

  // From now on the shard refuses everything fast — and the process is
  // still alive to observe it.
  EXPECT_EQ(store.client()
                .put_sync(stalled_key, Value::from_int64(3))
                .status.code(),
            StatusCode::kLivenessLost);
  EXPECT_EQ(store.client().get_sync("warm", 0).status.code(),
            StatusCode::kLivenessLost);
  // A failed completion unblocks the client before the worker publishes
  // its report; drain() waits for the window to finish accounting.
  store.drain();
  EXPECT_TRUE(store.shard_report(0).lost_liveness);
  EXPECT_GE(store.shard_report(0).failed_ops, 3u);
}

TEST(ShardedKvStore, ShardReportsAccumulate) {
  ShardedKvStore store(small_store());
  for (int k = 0; k < 20; ++k) {
    store.client().put_sync("k" + std::to_string(k), Value::from_int64(k));
  }
  store.drain();
  const auto stats = store.batch_stats();
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.client_ops, 20u);
  EXPECT_GT(store.frames_sent(), 0u);
  std::uint64_t shard_ops = 0;
  for (std::uint32_t s = 0; s < store.shard_count(); ++s) {
    shard_ops += store.shard_report(s).batch.client_ops;
  }
  EXPECT_EQ(shard_ops, 20u);
}

// ---- deterministic batching semantics (direct MuxProcess batches) -----------

struct BatchRig {
  static constexpr std::uint32_t kN = 3;
  static constexpr std::uint32_t kSlots = 4;
  std::unique_ptr<SimNetwork> net;
  BatchStats stats;

  BatchRig() {
    auto slot_cfg = [](std::uint32_t slot) {
      GroupConfig cfg;
      cfg.n = kN;
      cfg.t = 1;
      cfg.writer = slot % kN;
      cfg.initial = Value::from_string("v0");
      cfg.validate();
      return cfg;
    };
    std::vector<std::unique_ptr<ProcessBase>> processes;
    for (ProcessId pid = 0; pid < kN; ++pid) {
      processes.push_back(
          std::make_unique<MuxProcess>(kSlots, slot_cfg, pid));
    }
    net = std::make_unique<SimNetwork>(std::move(processes),
                                       SimNetwork::Options{});
  }

  MuxProcess& mux(ProcessId pid) { return net->process_as<MuxProcess>(pid); }

  /// Run one batch at `node` to completion; returns false on stall.
  bool run(ProcessId node, std::vector<MuxProcess::BatchOp> ops,
           bool coalesce) {
    bool done = false;
    mux(node).start_batch(net->context(node), std::move(ops), coalesce,
                          [&done] { done = true; }, &stats);
    return net->run_until([&done] { return done; });
  }
};

TEST(MuxBatch, ConsecutiveReadsShareOneProtocolRound) {
  BatchRig rig;
  std::vector<MuxProcess::BatchOp> ops;
  std::vector<std::pair<std::string, SeqNo>> results;
  for (int k = 0; k < 5; ++k) {
    MuxProcess::BatchOp op;
    op.slot = 1;
    op.read_done = [&results](const Value& v, SeqNo index) {
      results.emplace_back(v.to_string(), index);
    };
    ops.push_back(std::move(op));
  }
  ASSERT_TRUE(rig.run(2, std::move(ops), true));
  ASSERT_EQ(results.size(), 5u);
  for (const auto& [value, index] : results) {
    EXPECT_EQ(value, "v0");
    EXPECT_EQ(index, 0);
  }
  EXPECT_EQ(rig.stats.protocol_reads, 1u);
  EXPECT_EQ(rig.stats.coalesced_reads, 4u);
  // One two-bit read round: 2(n-1) frames, nothing per extra client.
  EXPECT_EQ(rig.net->stats().total_sent(), 2u * (BatchRig::kN - 1));
}

TEST(MuxBatch, WriteRunCollapsesLastWriteWins) {
  BatchRig rig;
  const std::uint32_t slot = 0;  // homed at p0
  std::vector<MuxProcess::BatchOp> ops;
  std::vector<std::pair<SeqNo, bool>> outcomes;
  for (int k = 1; k <= 3; ++k) {
    MuxProcess::BatchOp op;
    op.slot = slot;
    op.is_write = true;
    op.value = Value::from_int64(k * 10);
    op.write_done = [&outcomes](SeqNo version, bool absorbed) {
      outcomes.emplace_back(version, absorbed);
    };
    ops.push_back(std::move(op));
  }
  ASSERT_TRUE(rig.run(0, std::move(ops), true));
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0], (std::pair<SeqNo, bool>{1, true}));
  EXPECT_EQ(outcomes[1], (std::pair<SeqNo, bool>{1, true}));
  EXPECT_EQ(outcomes[2], (std::pair<SeqNo, bool>{1, false}));
  EXPECT_EQ(rig.stats.protocol_writes, 1u);
  EXPECT_EQ(rig.stats.absorbed_writes, 2u);

  // Only the surviving value ever reached the register.
  Value read_value;
  SeqNo read_index = -1;
  std::vector<MuxProcess::BatchOp> reads(1);
  reads[0].slot = slot;
  reads[0].read_done = [&](const Value& v, SeqNo index) {
    read_value = v;
    read_index = index;
  };
  ASSERT_TRUE(rig.run(1, std::move(reads), true));
  EXPECT_EQ(read_value.to_int64(), 30);
  EXPECT_EQ(read_index, 1);
}

TEST(MuxBatch, ReadBetweenWritesSplitsTheRun) {
  BatchRig rig;
  const std::uint32_t slot = 0;
  std::vector<MuxProcess::BatchOp> ops(3);
  SeqNo mid_read_index = -1;
  std::int64_t mid_read_value = 0;
  ops[0].slot = slot;
  ops[0].is_write = true;
  ops[0].value = Value::from_int64(1);
  ops[1].slot = slot;
  ops[1].read_done = [&](const Value& v, SeqNo index) {
    mid_read_value = v.to_int64();
    mid_read_index = index;
  };
  ops[2].slot = slot;
  ops[2].is_write = true;
  ops[2].value = Value::from_int64(2);
  ASSERT_TRUE(rig.run(0, std::move(ops), true));
  // Arrival order is preserved: the read sits between the writes, so the
  // writes cannot coalesce across it and the read sees exactly write 1.
  EXPECT_EQ(rig.stats.protocol_writes, 2u);
  EXPECT_EQ(rig.stats.absorbed_writes, 0u);
  EXPECT_EQ(mid_read_value, 1);
  EXPECT_EQ(mid_read_index, 1);
}

TEST(MuxBatch, CoalesceOffPipelinesEveryWrite) {
  BatchRig rig;
  std::vector<MuxProcess::BatchOp> ops;
  std::vector<SeqNo> versions;
  for (int k = 1; k <= 4; ++k) {
    MuxProcess::BatchOp op;
    op.slot = 0;
    op.is_write = true;
    op.value = Value::from_int64(k);
    op.write_done = [&versions](SeqNo version, bool absorbed) {
      EXPECT_FALSE(absorbed);
      versions.push_back(version);
    };
    ops.push_back(std::move(op));
  }
  ASSERT_TRUE(rig.run(0, std::move(ops), false));
  EXPECT_EQ(versions, (std::vector<SeqNo>{1, 2, 3, 4}));
  EXPECT_EQ(rig.stats.protocol_writes, 4u);
  EXPECT_EQ(rig.stats.absorbed_writes, 0u);
}

TEST(MuxBatch, ChainsForDistinctSlotsInterleave) {
  BatchRig rig;
  // Writes to slot 0 (home p0) and reads of slot 3 (home p0 as 3 % 3)
  // issued at p0 in one batch: distinct registers, both complete.
  std::vector<MuxProcess::BatchOp> ops(4);
  int reads_done = 0;
  ops[0].slot = 0;
  ops[0].is_write = true;
  ops[0].value = Value::from_int64(7);
  ops[1].slot = 3;
  ops[1].read_done = [&](const Value&, SeqNo) { ++reads_done; };
  ops[2].slot = 0;
  ops[2].is_write = true;
  ops[2].value = Value::from_int64(8);
  ops[3].slot = 3;
  ops[3].read_done = [&](const Value&, SeqNo) { ++reads_done; };
  ASSERT_TRUE(rig.run(0, std::move(ops), true));
  EXPECT_EQ(reads_done, 2);
  // Slot 0's two writes were adjacent in ITS chain (the slot-3 reads live
  // in a different chain), so they coalesced.
  EXPECT_EQ(rig.stats.protocol_writes, 1u);
  EXPECT_EQ(rig.stats.absorbed_writes, 1u);
  EXPECT_EQ(rig.stats.coalesced_reads, 1u);
}

}  // namespace
}  // namespace tbr
