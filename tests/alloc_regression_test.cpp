// Allocation-regression gate: steady-state message delivery in the sim
// runtime performs ZERO heap allocations per frame.
//
// Linked against bench/alloc_hooks (replaced global operator new with
// atomic counters), and registered with CTest only in non-sanitized builds
// — ASan/TSan interpose their own allocator and must not be mixed with the
// counting one. The simulator is single-threaded and deterministic, so
// these are exact equalities, not thresholds: any future change that puts
// an allocation back on the delivery path fails the suite immediately.
//
// What "steady state" means here: pools, freelists, event-heap backing
// storage and per-process container capacities are warmed by a first round
// of traffic; the measured window then repeats the same kind of traffic.
// Protocol state that grows by design (the two-bit register's history)
// is kept inside its current capacity chunk by the warmup/window sizing —
// growth of protocol state is not runtime overhead and is measured
// separately by bench_engine_hotpath.

#include <gtest/gtest.h>

#include "bench/alloc_hooks.hpp"
#include "bench/relay_harness.hpp"
#include "sim/sim_network.hpp"
#include "workload/sim_register_group.hpp"

namespace tbr {
namespace {

TEST(AllocRegression, DeliveryLoopIsAllocFree) {
  SimNetwork net(bench::make_relays(3, 0), SimNetwork::Options{});
  bench::kick_relay(net, 64);  // warm: event heap, frame pool, freelist
  ASSERT_TRUE(net.run());

  bench::kick_relay(net, 4096);
  const alloc::Window w;
  ASSERT_TRUE(net.run());
  EXPECT_EQ(w.allocations(), 0u)
      << "steady-state deliveries must not touch the heap";
}

TEST(AllocRegression, DeliveryLoopIsAllocFreeWithLargePayloads) {
  // 4 KiB values: the frame pool's recycled slots must absorb non-SSO
  // payloads through capacity reuse (copy-assign into a warmed slot).
  SimNetwork net(bench::make_relays(3, 4096), SimNetwork::Options{});
  bench::kick_relay(net, 64);
  ASSERT_TRUE(net.run());

  bench::kick_relay(net, 1024);
  const alloc::Window w;
  ASSERT_TRUE(net.run());
  EXPECT_EQ(w.allocations(), 0u)
      << "warmed pool slots must absorb 4 KiB payloads without allocating";
}

TEST(AllocRegression, CapacityModelDeliveryIsAllocFree) {
  // Same loop under the service-time capacity model: parked frames ride
  // the vector-ring service FIFO and drain events, which must also be
  // allocation-free once warm.
  SimNetwork::Options opt;
  opt.service_time = 1500;  // busier than the 1000-tick channel delay
  SimNetwork net(bench::make_relays(3, 0), std::move(opt));
  bench::kick_relay(net, 128);
  ASSERT_TRUE(net.run());

  bench::kick_relay(net, 2048);
  const alloc::Window w;
  ASSERT_TRUE(net.run());
  EXPECT_EQ(w.allocations(), 0u)
      << "parked-frame rings and drain events must not allocate";
}

TEST(AllocRegression, EventQueueClosureSchedulingIsAllocFree) {
  SimNetwork net(bench::make_relays(2, 0), SimNetwork::Options{});
  long counter = 0;
  // Warm the event heap to the same peak occupancy the window will reach
  // (the backing vector grows to the high-water mark once, then never).
  for (int i = 0; i < 1024; ++i) {
    net.schedule_after(i + 1, [&counter] { ++counter; });
  }
  ASSERT_TRUE(net.run());

  const alloc::Window w;
  for (int i = 0; i < 1024; ++i) {
    net.schedule_after(i + 1, [&counter] { ++counter; });
  }
  ASSERT_TRUE(net.run());
  EXPECT_EQ(w.allocations(), 0u)
      << "small client closures must stay inside InlineFn's buffer";
  EXPECT_EQ(counter, 1024 + 1024);
}

TEST(AllocRegression, TwoBitDisseminationSettlesAllocFree) {
  // The real protocol: after each (unmeasured) client write completes, the
  // residual WRITE-frame gossip drained by settle() must be allocation-free.
  // Warmup/window sizes keep each process's history deque inside its
  // current 16-entry chunk (17 warmup writes -> 18 entries incl. the
  // initial value; +8 window writes -> 26 < 32), so the window sees pure
  // delivery work.
  auto make = [] {
    SimRegisterGroup::Options opt;
    opt.cfg.n = 5;
    opt.cfg.t = 2;
    opt.cfg.writer = 0;
    opt.cfg.initial = Value::from_int64(0);
    opt.algo = Algorithm::kTwoBit;
    return SimRegisterGroup(std::move(opt));
  };
  auto group = make();
  for (int i = 0; i < 17; ++i) {
    group.write(Value::from_int64(i));
    group.settle();
    group.read(4);
    group.settle();
  }

  std::uint64_t allocs = 0;
  std::uint64_t events = 0;
  for (int k = 0; k < 8; ++k) {
    group.write(Value::from_int64(1000 + k));
    const auto events_before = group.net().events_executed();
    const alloc::Window w;
    group.settle();
    allocs += w.allocations();
    events += group.net().events_executed() - events_before;
  }
  EXPECT_GT(events, 0u) << "the window must actually deliver frames";
  EXPECT_EQ(allocs, 0u)
      << "two-bit gossip must ride the frame pool without allocating";
}

}  // namespace
}  // namespace tbr
