// Allocation-regression gate: steady-state message delivery in the sim
// runtime performs ZERO heap allocations per frame.
//
// Linked against bench/alloc_hooks (replaced global operator new with
// atomic counters), and registered with CTest only in non-sanitized builds
// — ASan/TSan interpose their own allocator and must not be mixed with the
// counting one. The simulator is single-threaded and deterministic, so
// these are exact equalities, not thresholds: any future change that puts
// an allocation back on the delivery path fails the suite immediately.
//
// What "steady state" means here: pools, freelists, event-heap backing
// storage and per-process container capacities are warmed by a first round
// of traffic; the measured window then repeats the same kind of traffic.
// Protocol state that grows by design (the two-bit register's history)
// is kept inside its current capacity chunk by the warmup/window sizing —
// growth of protocol state is not runtime overhead and is measured
// separately by bench_engine_hotpath.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/alloc_hooks.hpp"
#include "bench/relay_harness.hpp"
#include "core/twobit_process.hpp"
#include "kvstore/sharded_store.hpp"
#include "runtime/thread_network.hpp"
#include "sim/sim_network.hpp"
#include "transport/socket_network.hpp"
#include "workload/sim_register_group.hpp"

namespace tbr {
namespace {

TEST(AllocRegression, DeliveryLoopIsAllocFree) {
  SimNetwork net(bench::make_relays(3, 0), SimNetwork::Options{});
  bench::kick_relay(net, 64);  // warm: event heap, frame pool, freelist
  ASSERT_TRUE(net.run());

  bench::kick_relay(net, 4096);
  const alloc::Window w;
  ASSERT_TRUE(net.run());
  EXPECT_EQ(w.allocations(), 0u)
      << "steady-state deliveries must not touch the heap";
}

TEST(AllocRegression, DeliveryLoopIsAllocFreeWithLargePayloads) {
  // 4 KiB values: the frame pool's recycled slots must absorb non-SSO
  // payloads through capacity reuse (copy-assign into a warmed slot).
  SimNetwork net(bench::make_relays(3, 4096), SimNetwork::Options{});
  bench::kick_relay(net, 64);
  ASSERT_TRUE(net.run());

  bench::kick_relay(net, 1024);
  const alloc::Window w;
  ASSERT_TRUE(net.run());
  EXPECT_EQ(w.allocations(), 0u)
      << "warmed pool slots must absorb 4 KiB payloads without allocating";
}

TEST(AllocRegression, CapacityModelDeliveryIsAllocFree) {
  // Same loop under the service-time capacity model: parked frames ride
  // the vector-ring service FIFO and drain events, which must also be
  // allocation-free once warm.
  SimNetwork::Options opt;
  opt.service_time = 1500;  // busier than the 1000-tick channel delay
  SimNetwork net(bench::make_relays(3, 0), std::move(opt));
  bench::kick_relay(net, 128);
  ASSERT_TRUE(net.run());

  bench::kick_relay(net, 2048);
  const alloc::Window w;
  ASSERT_TRUE(net.run());
  EXPECT_EQ(w.allocations(), 0u)
      << "parked-frame rings and drain events must not allocate";
}

TEST(AllocRegression, EventQueueClosureSchedulingIsAllocFree) {
  SimNetwork net(bench::make_relays(2, 0), SimNetwork::Options{});
  long counter = 0;
  // Warm the event heap to the same peak occupancy the window will reach
  // (the backing vector grows to the high-water mark once, then never).
  for (int i = 0; i < 1024; ++i) {
    net.schedule_after(i + 1, [&counter] { ++counter; });
  }
  ASSERT_TRUE(net.run());

  const alloc::Window w;
  for (int i = 0; i < 1024; ++i) {
    net.schedule_after(i + 1, [&counter] { ++counter; });
  }
  ASSERT_TRUE(net.run());
  EXPECT_EQ(w.allocations(), 0u)
      << "small client closures must stay inside InlineFn's buffer";
  EXPECT_EQ(counter, 1024 + 1024);
}

// ---- the calendar scheduler (ISSUE 8): same exact ==0 gates ------------------
//
// The bucket ring recycles node pools, freelists and bucket heads like the
// frame pool, and resizes reuse vector capacity once the high-water mark is
// warm — so the calendar policy owes the very same exact-zero steady state
// as the heap policy above.

SimNetwork::Options calendar_net_options(Tick service_time = 0) {
  SimNetwork::Options opt;
  opt.scheduler_policy = EventQueue::Policy::kCalendar;
  opt.service_time = service_time;
  return opt;
}

TEST(AllocRegression, CalendarDeliveryLoopIsAllocFree) {
  SimNetwork net(bench::make_relays(3, 0), calendar_net_options());
  ASSERT_EQ(net.scheduler_policy(), EventQueue::Policy::kCalendar);
  bench::kick_relay(net, 64);  // warm: bucket ring, node pool, freelist
  ASSERT_TRUE(net.run());

  bench::kick_relay(net, 4096);
  const alloc::Window w;
  ASSERT_TRUE(net.run());
  EXPECT_EQ(w.allocations(), 0u)
      << "calendar-path deliveries must not touch the heap";
}

TEST(AllocRegression, CalendarCapacityModelDeliveryIsAllocFree) {
  SimNetwork net(bench::make_relays(3, 0), calendar_net_options(1500));
  bench::kick_relay(net, 128);
  ASSERT_TRUE(net.run());

  bench::kick_relay(net, 2048);
  const alloc::Window w;
  ASSERT_TRUE(net.run());
  EXPECT_EQ(w.allocations(), 0u)
      << "calendar-path drains and parked frames must not allocate";
}

TEST(AllocRegression, CalendarClosureSchedulingIsAllocFree) {
  // 1024 pending closures push the ring through its grow resizes during
  // warmup; the measured window repeats the same occupancy sweep, so every
  // grow/shrink must reuse the warmed vector capacities exactly.
  SimNetwork net(bench::make_relays(2, 0), calendar_net_options());
  long counter = 0;
  for (int i = 0; i < 1024; ++i) {
    net.schedule_after(i + 1, [&counter] { ++counter; });
  }
  ASSERT_TRUE(net.run());

  const alloc::Window w;
  for (int i = 0; i < 1024; ++i) {
    net.schedule_after(i + 1, [&counter] { ++counter; });
  }
  ASSERT_TRUE(net.run());
  EXPECT_EQ(w.allocations(), 0u)
      << "warm calendar resizes must reuse bucket/pool capacity";
  EXPECT_EQ(counter, 1024 + 1024);
}

TEST(AllocRegression, TwoBitDisseminationSettlesAllocFree) {
  // The real protocol: after each (unmeasured) client write completes, the
  // residual WRITE-frame gossip drained by settle() must be allocation-free.
  // Warmup/window sizes keep each process's history deque inside its
  // current 16-entry chunk (17 warmup writes -> 18 entries incl. the
  // initial value; +8 window writes -> 26 < 32), so the window sees pure
  // delivery work.
  auto make = [] {
    SimRegisterGroup::Options opt;
    opt.cfg.n = 5;
    opt.cfg.t = 2;
    opt.cfg.writer = 0;
    opt.cfg.initial = Value::from_int64(0);
    opt.algo = Algorithm::kTwoBit;
    return SimRegisterGroup(std::move(opt));
  };
  auto group = make();
  for (int i = 0; i < 17; ++i) {
    group.client().write_sync(Value::from_int64(i));
    group.settle();
    group.client().read_sync(4);
    group.settle();
  }

  std::uint64_t allocs = 0;
  std::uint64_t events = 0;
  for (int k = 0; k < 8; ++k) {
    group.client().write_sync(Value::from_int64(1000 + k));
    const auto events_before = group.net().events_executed();
    const alloc::Window w;
    group.settle();
    allocs += w.allocations();
    events += group.net().events_executed() - events_before;
  }
  EXPECT_GT(events, 0u) << "the window must actually deliver frames";
  EXPECT_EQ(allocs, 0u)
      << "two-bit gossip must ride the frame pool without allocating";
}

// ---- the unified client API (PR 4): allocs per OPERATION ---------------------
//
// Same discipline, one level up: a steady-state operation through the
// Ticket convenience API — pooled OpState in, submit, wait, result out —
// must not touch the heap. Windows keep the register's history deque
// inside its current chunk (one entry per write, 16 Values per libstdc++
// chunk): protocol-state growth is the paper's open problem, not client
// overhead, and is measured by bench_local_memory instead.

TEST(AllocRegression, BoundedHistoryWorkloadIsAllocFree) {
  // The bounded-history subsystem end to end: ACK frames, acked-prefix
  // checkpoint advancement, and segment recycling must all ride warmed
  // storage. Stronger than the faithful gates above: the log's footprint is
  // flat by design, so there is no chunk-boundary caveat — every window of
  // the whole workload (ops AND residual gossip) must be exactly zero.
  SimRegisterGroup::Options opt;
  opt.cfg.n = 3;
  opt.cfg.t = 1;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.process_factory = [](const GroupConfig& cfg, ProcessId pid) {
    TwoBitOptions o;
    o.bounded_history = true;
    o.ack_interval = 1;
    return std::make_unique<TwoBitProcess>(cfg, pid, o);
  };
  SimRegisterGroup group(std::move(opt));
  RegisterClient& client = group.client();

  // Warm: pools, rings, the segment freelist, acked rows, GC counters.
  for (int k = 0; k < 64; ++k) {
    ASSERT_TRUE(client.write_sync(Value::from_int64(k)).status.ok());
    ASSERT_TRUE(client.read_sync((k % 2) + 1).status.ok());
  }
  group.settle();

  std::uint64_t allocs = 0;
  for (int k = 0; k < 32; ++k) {
    const alloc::Window w;
    const OpResult wr = client.write_sync(Value::from_int64(1000 + k));
    const OpResult rd = client.read_sync((k % 2) + 1);
    group.settle();
    EXPECT_TRUE(wr.status.ok());
    EXPECT_TRUE(rd.status.ok());
    allocs += w.allocations();
  }
  const auto& writer = group.net().process_as<TwoBitProcess>(0);
  EXPECT_GT(writer.gc_reclaimed_count(), 0u)
      << "the window must actually exercise GC";
  EXPECT_EQ(allocs, 0u)
      << "bounded-mode steady state must be allocation-free per op";
}

TEST(AllocRegression, SimTicketClosedLoopIsAllocFree) {
  SimRegisterGroup::Options opt;
  opt.cfg.n = 5;
  opt.cfg.t = 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  SimRegisterGroup group(std::move(opt));
  RegisterClient& client = group.client();

  // Warm: pool, chains, engine storage, and the history chunk (16 writes
  // -> entries 0..16; the measured 8 writes land at 17..24 < 32).
  for (int k = 0; k < 16; ++k) {
    ASSERT_TRUE(client.write_sync(Value::from_int64(k)).status.ok());
    ASSERT_TRUE(client.read_sync(4).status.ok());
  }
  group.settle();

  const alloc::Window w;
  for (int k = 0; k < 8; ++k) {
    const OpResult wr = client.write_sync(Value::from_int64(100 + k));
    const OpResult rd = client.read_sync((k % 4) + 1);
    EXPECT_TRUE(wr.status.ok());
    EXPECT_TRUE(rd.status.ok());
  }
  group.settle();
  EXPECT_EQ(w.allocations(), 0u)
      << "a sim ticket round-trip must not touch the heap";
}

TEST(AllocRegression, FastReadTicketClosedLoopsAreAllocFree) {
  // The fast-path read engines (src/fastread/) own the same contract, with
  // no history-chunk caveat: both keep O(1) register state (one timestamp +
  // one value; the time-efficient engine adds a fixed know_[n] vector), so
  // once the relay slots / echo scratches and the reused Value capacities
  // are warm, EVERY window is exactly zero — including Oh-RAM windows that
  // take the write-back fallback.
  for (const auto algo : fastread_algorithms()) {
    SimRegisterGroup::Options opt;
    opt.cfg.n = 5;
    opt.cfg.t = 2;
    opt.cfg.writer = 0;
    opt.cfg.initial = Value::from_int64(0);
    opt.algo = algo;
    SimRegisterGroup group(std::move(opt));
    RegisterClient& client = group.client();

    for (int k = 0; k < 16; ++k) {
      ASSERT_TRUE(client.write_sync(Value::from_int64(k)).status.ok());
      ASSERT_TRUE(client.read_sync(4).status.ok());
    }
    group.settle();

    const alloc::Window w;
    for (int k = 0; k < 8; ++k) {
      const OpResult wr = client.write_sync(Value::from_int64(100 + k));
      const OpResult rd = client.read_sync((k % 4) + 1);
      EXPECT_TRUE(wr.status.ok());
      EXPECT_TRUE(rd.status.ok());
    }
    group.settle();
    EXPECT_EQ(w.allocations(), 0u)
        << algorithm_name(algo)
        << " ticket round-trips must not touch the heap";
  }
}

TEST(AllocRegression, ThreadedTicketClosedLoopIsAllocFree) {
  ThreadNetwork::Options opt;
  opt.cfg.n = 3;
  opt.cfg.t = 1;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.max_delay_us = 0;
  ThreadNetwork net(opt);
  net.start();
  RegisterClient& client = net.client();

  // Warm 64 writes (entries 0..64; chunk boundary at 64 lands in warmup)
  // plus reads for every pool/ring/heap high-water mark.
  for (int k = 0; k < 64; ++k) {
    ASSERT_TRUE(client.write_sync(Value::from_int64(k)).status.ok());
    ASSERT_TRUE(client.read_sync(1).status.ok());
    ASSERT_TRUE(client.read_sync(2).status.ok());
  }

  // Concurrent pools reach their high-water marks asynchronously, so one
  // window can still catch a late growth step; the MINIMUM over a few
  // windows is the steady state (a per-op allocation would show up in
  // every window). Each window holds 8 writes: boundary windows (history
  // entries crossing a multiple of 16) absorb the chunk allocation, the
  // clean windows must be exactly zero.
  std::uint64_t min_allocs = ~0ull;
  for (int window = 0; window < 4; ++window) {
    const alloc::Window w;
    for (int k = 0; k < 8; ++k) {
      const OpResult wr = client.write_sync(Value::from_int64(1000 + k));
      const OpResult r1 = client.read_sync(1);
      const OpResult r2 = client.read_sync(2);
      EXPECT_TRUE(wr.status.ok());
      EXPECT_TRUE(r1.status.ok());
      EXPECT_TRUE(r2.status.ok());
    }
    min_allocs = std::min(min_allocs, w.allocations());
  }
  EXPECT_EQ(min_allocs, 0u)
      << "a threaded ticket round-trip must not touch the heap";
}

TEST(AllocRegression, SocketTicketClosedLoopStaysWithinOneAllocPerOp) {
  // The socket runtime's ticket loop over real loopback TCP: commands ride
  // recycled vectors onto the loop thread, frames drain through the
  // consumed-offset ring, completions resolve into pooled OpStates. Same
  // min-of-windows discipline as the threaded gate (n loop threads reach
  // their buffer high-water marks asynchronously; a true per-op allocation
  // would count in EVERY window), same 1-write-in-4 mix so windows stay
  // inside the warmed history chunk. Gate (ISSUE 5): <= 1 alloc/op.
  SocketNetwork::Options opt;
  opt.cfg.n = 3;
  opt.cfg.t = 1;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  SocketNetwork net(std::move(opt));
  net.start();
  RegisterClient& client = net.client();

  auto one_op = [&](std::uint32_t k) {
    if (k % 4 == 0) {
      ASSERT_TRUE(client.write_sync(Value::from_int64(k)).status.ok());
    } else {
      ASSERT_TRUE(client.read_sync((k % 2) + 1).status.ok());
    }
  };
  for (std::uint32_t k = 0; k < 256; ++k) one_op(k);  // warm rings/pools

  constexpr std::uint32_t kWindowOps = 32;
  std::uint64_t min_allocs = ~0ull;
  for (int window = 0; window < 4; ++window) {
    const alloc::Window w;
    for (std::uint32_t k = 0; k < kWindowOps; ++k) one_op(k);
    min_allocs = std::min(min_allocs, w.allocations());
  }
  net.stop();
  const double per_op =
      static_cast<double>(min_allocs) / static_cast<double>(kWindowOps);
  EXPECT_LE(per_op, 1.0)
      << "socket ticket ops must stay within one allocation per op ("
      << min_allocs << " allocs over " << kWindowOps << " ops)";
}

TEST(AllocRegression, ShardedKvClientStaysWithinOneAllocPerOp) {
  // Pipelined waves through the sharded store's pooled client. min_batch
  // == max_batch == the wave size pins every batching window to exactly
  // one wave, making the per-window planning work — and so the allocation
  // count — deterministic. Acceptance (ISSUE 4): <= 1 alloc/op; the
  // recycled plan/window storage actually gets this near zero.
  constexpr std::uint32_t kWaveOps = 64;
  constexpr std::uint32_t kWaves = 8;
  ShardedKvStore::Options opt;
  opt.shards = 1;
  opt.n = 3;
  opt.t = 1;
  opt.slots_per_shard = 16;
  opt.min_batch = kWaveOps;
  opt.max_batch = kWaveOps;
  opt.min_batch_wait = std::chrono::microseconds(200'000);
  ShardedKvStore store(std::move(opt));
  KvClient& client = store.client();

  std::vector<std::string> keys;
  for (int k = 0; k < 8; ++k) keys.push_back("key-" + std::to_string(k));
  std::vector<Ticket> tickets(kWaveOps);
  auto run_wave = [&](std::uint32_t wave) {
    for (std::uint32_t k = 0; k < kWaveOps; ++k) {
      const std::string& key = keys[(wave + k) % keys.size()];
      tickets[k] = (k % 4 == 0)
                       ? client.put(key, Value::from_int64(wave + k))
                       : client.get(key);
    }
    for (std::uint32_t k = 0; k < kWaveOps; ++k) {
      EXPECT_TRUE(client.wait(tickets[k]).status.ok());
    }
  };

  for (std::uint32_t wave = 0; wave < 8; ++wave) run_wave(wave);  // warm

  const alloc::Window w;
  for (std::uint32_t wave = 0; wave < kWaves; ++wave) run_wave(wave);
  store.drain();
  const double per_op =
      static_cast<double>(w.allocations()) /
      static_cast<double>(kWaves * kWaveOps);
  EXPECT_LE(per_op, 1.0)
      << "sharded KvClient ops must stay within one allocation per op ("
      << w.allocations() << " allocs over " << kWaves * kWaveOps << " ops)";
}

}  // namespace
}  // namespace tbr
