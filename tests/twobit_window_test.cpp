// The bounded-history ablation (TwoBitOptions::history_window): the
// executable form of the paper's concluding open problem. Safety must
// survive any window; liveness must fail exactly when eviction outpaces a
// laggard; generous windows must be indistinguishable from the faithful
// algorithm.
#include <gtest/gtest.h>

#include "checker/swmr_checker.hpp"
#include "core/twobit_process.hpp"
#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

constexpr Tick kDelta = 1000;

SimRegisterGroup make_windowed(std::uint32_t n, std::size_t window,
                               std::unique_ptr<DelayModel> delay) {
  SimRegisterGroup::Options opt;
  opt.cfg.n = n;
  opt.cfg.t = (n - 1) / 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.delay = std::move(delay);
  opt.process_factory = [window](const GroupConfig& cfg, ProcessId pid) {
    TwoBitOptions options;
    options.history_window = window;
    return std::make_unique<TwoBitProcess>(cfg, pid, options);
  };
  return SimRegisterGroup(std::move(opt));
}

TEST(TwoBitWindow, GenerousWindowBehavesFaithfully) {
  // Window far larger than any lag: identical behaviour, zero skipped
  // catch-ups, full liveness.
  auto group = make_windowed(5, 100, make_constant_delay(kDelta));
  for (int k = 1; k <= 40; ++k) group.client().write_sync(Value::from_int64(k));
  group.settle();
  for (ProcessId pid = 0; pid < 5; ++pid) {
    const auto& p = group.net().process_as<TwoBitProcess>(pid);
    EXPECT_EQ(p.wsync(pid), 40);
    EXPECT_EQ(p.skipped_catchups(), 0u);
  }
  EXPECT_EQ(group.client().read_sync(3).value.to_int64(), 40);
}

TEST(TwoBitWindow, WindowBoundsResidentHistory) {
  auto group = make_windowed(3, 4, make_constant_delay(kDelta));
  for (int k = 1; k <= 20; ++k) group.client().write_sync(Value::from_int64(k));
  group.settle();
  const auto& writer = group.net().process_as<TwoBitProcess>(0);
  EXPECT_EQ(writer.history().size(), 4u);
  EXPECT_EQ(writer.history_base(), 17);  // retains indices 17..20
  EXPECT_EQ(writer.evicted_count(), 17u);
  // Reads still serve the newest value.
  EXPECT_EQ(group.client().read_sync(1).value.to_int64(), 20);
}

TEST(TwoBitWindow, WindowCapsLocalMemory) {
  auto bounded = make_windowed(3, 8, make_constant_delay(kDelta));
  SimRegisterGroup::Options faithful_opt;
  faithful_opt.cfg.n = 3;
  faithful_opt.cfg.t = 1;
  faithful_opt.cfg.writer = 0;
  faithful_opt.cfg.initial = Value::from_int64(0);
  faithful_opt.algo = Algorithm::kTwoBit;
  faithful_opt.delay = make_constant_delay(kDelta);
  SimRegisterGroup faithful(std::move(faithful_opt));

  for (int k = 1; k <= 200; ++k) {
    bounded.client().write_sync(Value::from_int64(k));
    faithful.client().write_sync(Value::from_int64(k));
  }
  bounded.settle();
  faithful.settle();
  const auto bounded_mem = bounded.process(1).local_memory_bytes();
  const auto faithful_mem = faithful.process(1).local_memory_bytes();
  EXPECT_LT(bounded_mem, faithful_mem / 5);
}

TEST(TwoBitWindow, StraggledProcessStallsForever) {
  // Straggler 32x slower, window 4, 30 writes: by the time its echoes reach
  // anyone, the values it needs next are evicted everywhere. It must stall
  // (Lemma 6/9 break) while everyone else completes.
  auto group = make_windowed(
      5, 4, make_straggler_delay(4, 32 * kDelta, kDelta));
  for (int k = 1; k <= 30; ++k) group.client().write_sync(Value::from_int64(k));
  group.settle();

  const auto& straggler = group.net().process_as<TwoBitProcess>(4);
  EXPECT_LT(straggler.wsync(4), 30) << "straggler must be permanently stale";
  std::uint64_t skipped = 0;
  for (ProcessId pid = 0; pid < 5; ++pid) {
    skipped +=
        group.net().process_as<TwoBitProcess>(pid).skipped_catchups();
  }
  EXPECT_GT(skipped, 0u) << "eviction must have bitten at least once";

  // Fresh processes still read fine (liveness only dies for the laggard)...
  EXPECT_EQ(group.client().read_sync(1).value.to_int64(), 30);

  // ...but a read at the straggler cannot terminate: responders wait
  // forever for freshness the straggler can never reach.
  bool read_done = false;
  group.begin_read(4, [&](const Value&, SeqNo) { read_done = true; });
  (void)group.net().run();
  EXPECT_FALSE(read_done) << "Lemma 9 must fail under eviction, by design";
}

TEST(TwoBitWindow, SafetyHoldsEvenWhenLivenessDies) {
  // Same straggler setup driven through the workload machinery: whatever
  // completes must still be atomic.
  SimWorkloadOptions opt;
  opt.cfg.n = 5;
  opt.cfg.t = 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.seed = 3;
  opt.ops_per_process = 15;
  opt.think_time_max = 100;
  opt.delay_factory = [](const GroupConfig&) {
    return make_straggler_delay(4, 40 * kDelta, kDelta / 2);
  };
  // Swap in windowed processes via the group factory.
  SimRegisterGroup::Options gopt;
  gopt.cfg = opt.cfg;
  gopt.seed = opt.seed;
  gopt.delay = opt.delay_factory(opt.cfg);
  gopt.process_factory = [](const GroupConfig& cfg, ProcessId pid) {
    TwoBitOptions options;
    options.history_window = 3;
    return std::make_unique<TwoBitProcess>(cfg, pid, options);
  };
  SimRegisterGroup group(std::move(gopt));

  HistoryLog log;
  SeqNo widx = 0;
  // Writer: 15 writes; reader p1: 15 reads; straggler p4: 3 reads that may
  // never finish. Closed-loop via completion chaining.
  std::function<void()> next_write = [&] {
    if (widx >= 15) return;
    ++widx;
    Value v = Value::from_int64(widx);
    const auto id = log.begin_write(0, group.net().now(), widx, v);
    group.begin_write(std::move(v), [&, id] {
      log.end_write(id, group.net().now());
      group.net().schedule_after(50, next_write);
    });
  };
  int reads_left = 15;
  std::function<void()> next_read = [&] {
    if (reads_left-- <= 0) return;
    const auto id = log.begin_read(1, group.net().now());
    group.begin_read(1, [&, id](const Value& v, SeqNo idx) {
      log.end_read(id, group.net().now(), v, idx);
      group.net().schedule_after(80, next_read);
    });
  };
  group.net().schedule_at(0, next_write);
  group.net().schedule_at(10, next_read);
  // One read at the straggler; it may never complete (stays incomplete in
  // the log, which the atomicity definition tolerates).
  group.net().schedule_at(1000, [&] {
    const auto id = log.begin_read(4, group.net().now());
    group.begin_read(4, [&, id](const Value& v, SeqNo idx) {
      log.end_read(id, group.net().now(), v, idx);
    });
  });
  (void)group.net().run();

  const auto verdict = SwmrChecker::check(log.ops(), opt.cfg.initial);
  EXPECT_TRUE(verdict.ok) << verdict.error;
}

TEST(TwoBitWindow, FaithfulModeNeverEvicts) {
  auto group = make_windowed(3, 0, make_constant_delay(kDelta));  // window 0
  for (int k = 1; k <= 50; ++k) group.client().write_sync(Value::from_int64(k));
  group.settle();
  const auto& p = group.net().process_as<TwoBitProcess>(1);
  EXPECT_EQ(p.evicted_count(), 0u);
  EXPECT_EQ(p.history_base(), 0);
  EXPECT_EQ(p.history().size(), 51u);
}

}  // namespace
}  // namespace tbr
