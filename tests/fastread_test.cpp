// The fast-path read engines (src/fastread/): codec roundtrips, the
// virtual-time latency claims that justify their existence (3Δ / 2Δ reads
// vs. the two-bit engine's 4Δ), and the Oh-RAM concurrent-write fallback.
#include <gtest/gtest.h>

#include "fastread/ohram_process.hpp"
#include "fastread/time_efficient_process.hpp"
#include "kvstore/kv_store.hpp"
#include "kvstore/sharded_store.hpp"
#include "workload/sim_register_group.hpp"
#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

constexpr Tick kDelta = SimRegisterGroup::kDefaultDelta;

// ---- codec roundtrips -------------------------------------------------------

Message roundtrip(const Codec& codec, const Message& msg) {
  std::string bytes;
  codec.encode_into(msg, bytes);
  Message out;
  codec.decode_into(bytes, out);
  return out;
}

TEST(FastReadCodec, OhRamRoundtripsEveryType) {
  const auto& codec = ohram_codec();
  for (const auto type :
       {OhRamType::kWrite, OhRamType::kWriteAck, OhRamType::kRead,
        OhRamType::kRelay, OhRamType::kReadAck, OhRamType::kWriteBack,
        OhRamType::kWriteBackAck}) {
    Message msg;
    msg.type = static_cast<std::uint8_t>(type);
    const bool tagged = type != OhRamType::kWrite && type != OhRamType::kWriteAck;
    const bool state = type != OhRamType::kWriteAck &&
                       type != OhRamType::kWriteBackAck;
    if (tagged) msg.aux = (77 << 8) | 3;  // tag 77, reader 3
    if (state || type == OhRamType::kWriteAck) msg.seq = 41;
    if (state) {
      msg.has_value = true;
      msg.value = Value::from_string("payload");
    }
    const Message out = roundtrip(codec, msg);
    EXPECT_EQ(out.type, msg.type) << codec.type_name(msg.type);
    EXPECT_EQ(out.seq, msg.seq) << codec.type_name(msg.type);
    EXPECT_EQ(out.aux, msg.aux) << codec.type_name(msg.type);
    EXPECT_EQ(out.has_value, msg.has_value) << codec.type_name(msg.type);
    EXPECT_EQ(out.value, msg.value) << codec.type_name(msg.type);
    // Decode fills the accounting; the type tag costs 3 bits.
    EXPECT_GE(out.wire.control_bits, 3u);
  }
}

TEST(FastReadCodec, TimeEfficientRoundtripsEveryType) {
  const auto& codec = time_efficient_codec();
  for (const auto type :
       {TimeEffType::kEcho, TimeEffType::kRead, TimeEffType::kState}) {
    Message msg;
    msg.type = static_cast<std::uint8_t>(type);
    if (type != TimeEffType::kEcho) msg.aux = 19;
    if (type != TimeEffType::kRead) {
      msg.seq = 7;
      msg.has_value = true;
      msg.value = Value::from_int64(123);
    }
    const Message out = roundtrip(codec, msg);
    EXPECT_EQ(out.type, msg.type) << codec.type_name(msg.type);
    EXPECT_EQ(out.seq, msg.seq) << codec.type_name(msg.type);
    EXPECT_EQ(out.aux, msg.aux) << codec.type_name(msg.type);
    EXPECT_EQ(out.has_value, msg.has_value) << codec.type_name(msg.type);
    EXPECT_EQ(out.value, msg.value) << codec.type_name(msg.type);
    EXPECT_GE(out.wire.control_bits, 2u + 64u);
  }
}

TEST(FastReadCodec, RejectsTrailingBytes) {
  std::string bytes;
  Message msg;
  msg.type = static_cast<std::uint8_t>(TimeEffType::kRead);
  msg.aux = 5;
  time_efficient_codec().encode_into(msg, bytes);
  bytes.push_back('x');
  Message out;
  EXPECT_ANY_THROW(time_efficient_codec().decode_into(bytes, out));
}

// ---- registry ---------------------------------------------------------------

TEST(FastReadRegistry, NamesAndFactories) {
  EXPECT_EQ(algorithm_name(Algorithm::kOhRam), "ohram");
  EXPECT_EQ(algorithm_name(Algorithm::kTimeEfficient), "timeeff");
  // Table 1 sweeps must stay exactly the paper's four columns.
  EXPECT_EQ(all_algorithms().size(), 4u);
  for (const auto algo : all_algorithms()) {
    EXPECT_NE(algo, Algorithm::kOhRam);
    EXPECT_NE(algo, Algorithm::kTimeEfficient);
  }
  EXPECT_EQ(fastread_algorithms().size(), 2u);

  GroupConfig cfg;
  cfg.n = 3;
  cfg.t = 1;
  cfg.initial = Value::from_int64(0);
  auto ohram = make_register_process(Algorithm::kOhRam, cfg, 1);
  EXPECT_NE(dynamic_cast<OhRamProcess*>(ohram.get()), nullptr);
  auto timeeff = make_register_process(Algorithm::kTimeEfficient, cfg, 1);
  EXPECT_NE(dynamic_cast<TimeEfficientProcess*>(timeeff.get()), nullptr);
}

// ---- virtual-time latency ---------------------------------------------------

SimRegisterGroup make_group(Algorithm algo, std::uint32_t n, std::uint32_t t) {
  SimRegisterGroup::Options opt;
  opt.cfg.n = n;
  opt.cfg.t = t;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = algo;
  return SimRegisterGroup(std::move(opt));
}

Tick timed_write(SimRegisterGroup& group, std::int64_t v) {
  const Tick start = group.net().now();
  Tick end = -1;
  group.begin_write(Value::from_int64(v), [&] { end = group.net().now(); });
  group.net().run();
  EXPECT_GE(end, 0);
  return end - start;
}

Tick timed_read(SimRegisterGroup& group, ProcessId reader,
                std::int64_t expect_value, SeqNo expect_index) {
  const Tick start = group.net().now();
  Tick end = -1;
  group.begin_read(reader, [&](const Value& v, SeqNo index) {
    end = group.net().now();
    EXPECT_EQ(v.to_int64(), expect_value);
    EXPECT_EQ(index, expect_index);
  });
  group.net().run();
  EXPECT_GE(end, 0);
  return end - start;
}

// Constant delay Δ, no concurrency: the headline numbers. The Oh-RAM read
// costs 3Δ (READ at Δ, relay quorums at 2Δ, acks at 3Δ); the time-efficient
// read costs one round trip (2Δ); writes cost 2Δ in both.
TEST(FastReadLatency, OhRamSequentialReadIsThreeDelta) {
  auto group = make_group(Algorithm::kOhRam, 5, 2);
  EXPECT_EQ(timed_write(group, 7), 2 * kDelta);
  group.settle();
  EXPECT_EQ(timed_read(group, 3, 7, 1), 3 * kDelta);
  group.settle();
  EXPECT_EQ(timed_read(group, 4, 7, 1), 3 * kDelta);
  // Both reads took the 1.5-round path: nothing was concurrent.
  const auto& reader = dynamic_cast<const OhRamProcess&>(group.process(3));
  EXPECT_EQ(reader.fast_reads(), 1u);
  EXPECT_EQ(reader.fallback_reads(), 0u);
}

TEST(FastReadLatency, TimeEfficientSequentialReadIsOneRoundTrip) {
  auto group = make_group(Algorithm::kTimeEfficient, 5, 2);
  EXPECT_EQ(timed_write(group, 9), 2 * kDelta);
  group.settle();
  EXPECT_EQ(timed_read(group, 2, 9, 1), 2 * kDelta);
  group.settle();
  EXPECT_EQ(timed_read(group, 1, 9, 1), 2 * kDelta);
}

// ---- Oh-RAM fallback --------------------------------------------------------

// Under randomized delays with reads racing writes, some relay quorums see
// the old timestamp and some the new: acks disagree and the reader falls
// back to the write-back round. The run must stay atomic either way.
TEST(FastReadFallback, OhRamTakesWriteBackPathUnderContention) {
  SimRegisterGroup::Options opt;
  opt.cfg.n = 5;
  opt.cfg.t = 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kOhRam;
  opt.seed = 11;
  opt.delay = make_uniform_delay(1, 1500);
  SimRegisterGroup group(std::move(opt));

  int writes_done = 0;
  std::function<void()> next_write = [&] {
    ++writes_done;
    if (writes_done < 20) {
      group.begin_write(Value::from_int64(writes_done + 1), next_write);
    }
  };
  group.begin_write(Value::from_int64(1), next_write);

  int reads_done = 0;
  std::vector<std::function<void(const Value&, SeqNo)>> read_cbs(5);
  for (ProcessId reader = 1; reader <= 3; ++reader) {
    read_cbs[reader] = [&, reader](const Value& v, SeqNo index) {
      // The register holds from_int64(index) after write #index.
      EXPECT_EQ(v.to_int64(), index);
      ++reads_done;
      if (reads_done < 60) group.begin_read(reader, read_cbs[reader]);
    };
    group.begin_read(reader, read_cbs[reader]);
  }
  group.net().run();

  std::uint64_t fast = 0;
  std::uint64_t fallback = 0;
  for (ProcessId pid = 0; pid < 5; ++pid) {
    const auto& proc = dynamic_cast<const OhRamProcess&>(group.process(pid));
    fast += proc.fast_reads();
    fallback += proc.fallback_reads();
  }
  EXPECT_EQ(writes_done, 20);
  EXPECT_GE(reads_done, 60);
  // Both completion paths must actually run in this schedule.
  EXPECT_GT(fast, 0u);
  EXPECT_GT(fallback, 0u);
}

// ---- the KV engine knob -----------------------------------------------------

// Options::engine routes every slot of the stores through a fast-path read
// register instead of the two-bit default; per-key semantics are unchanged.
TEST(FastReadKv, FlatStoreEngineKnobRoundtrips) {
  for (const auto algo : fastread_algorithms()) {
    KvStore::Options opt;
    opt.n = 3;
    opt.t = 1;
    opt.slots = 4;
    opt.engine = algo;
    opt.initial = Value::from_int64(0);
    KvStore store(std::move(opt));
    KvClient& client = store.client();
    // Keys hashing to one slot share a register (store semantics), so
    // check each key right after its put and probe a distinct slot for
    // the never-written read.
    EXPECT_TRUE(client.put_sync("alpha", Value::from_int64(42)).status.ok())
        << algorithm_name(algo);
    const OpResult got = client.get_sync("alpha");
    ASSERT_TRUE(got.status.ok()) << algorithm_name(algo);
    EXPECT_EQ(got.value.to_int64(), 42) << algorithm_name(algo);
    std::string untouched = "miss-0";
    for (int k = 1; store.slot_of(untouched) == store.slot_of("alpha"); ++k) {
      untouched = "miss-" + std::to_string(k);
    }
    const OpResult miss = client.get_sync(untouched);
    ASSERT_TRUE(miss.status.ok()) << algorithm_name(algo);
    EXPECT_EQ(miss.version, 0) << algorithm_name(algo);
    EXPECT_EQ(miss.value.to_int64(), 0) << algorithm_name(algo);
  }
}

TEST(FastReadKv, ShardedStoreEngineKnobRoundtrips) {
  for (const auto algo : fastread_algorithms()) {
    ShardedKvStore::Options opt;
    opt.shards = 2;
    opt.n = 3;
    opt.t = 1;
    opt.slots_per_shard = 4;
    opt.engine = algo;
    opt.initial = Value::from_int64(0);
    ShardedKvStore store(std::move(opt));
    KvClient& client = store.client();
    // Read each key back right after its put: keys colliding onto one
    // slot share a register, so cross-key ordering is not per-key.
    for (int k = 0; k < 8; ++k) {
      const std::string key = "key-" + std::to_string(k);
      ASSERT_TRUE(client.put_sync(key, Value::from_int64(k)).status.ok())
          << algorithm_name(algo);
      const OpResult got = client.get_sync(key);
      ASSERT_TRUE(got.status.ok()) << algorithm_name(algo);
      EXPECT_EQ(got.value.to_int64(), k) << algorithm_name(algo);
    }
    store.stop();
  }
}

// ---- workload smoke ---------------------------------------------------------

TEST(FastReadWorkload, BothEnginesDrainAndLinearize) {
  for (const auto algo : fastread_algorithms()) {
    SimWorkloadOptions opt;
    opt.cfg.n = 5;
    opt.cfg.t = 2;
    opt.cfg.writer = 0;
    opt.cfg.initial = Value::from_int64(0);
    opt.algo = algo;
    opt.seed = 21;
    opt.ops_per_process = 12;
    opt.writer_read_fraction = 0.25;
    const auto result = run_sim_workload(opt);
    ASSERT_TRUE(result.drained) << algorithm_name(algo);
    const auto check = result.check_atomicity(opt.cfg.initial);
    EXPECT_TRUE(check.ok) << algorithm_name(algo) << ": " << check.error;
    EXPECT_EQ(result.completed_by_correct, result.quota_of_correct)
        << algorithm_name(algo);
  }
}

}  // namespace
}  // namespace tbr
