// NetworkContext::schedule — the per-process timer facility added for the
// transport decorators — across all three runtimes: ordering, crash
// suppression, and rearming from within a callback.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/twobit_codec.hpp"
#include "runtime/thread_network.hpp"
#include "sim/sim_network.hpp"
#include "transport/socket_network.hpp"

namespace tbr {
namespace {

// A register process that exists only to host timers in the runtimes.
class TimerHost final : public RegisterProcessBase {
 public:
  TimerHost(GroupConfig cfg, ProcessId self)
      : RegisterProcessBase(cfg, self) {}
  void start_write(NetworkContext& net, Value, WriteDone done) override {
    // Arm a chain of two timers, then complete.
    net.schedule(1000, [this, &net] {
      fired.fetch_add(1, std::memory_order_relaxed);
      net.schedule(1000, [this] {
        fired.fetch_add(1, std::memory_order_relaxed);
      });
    });
    if (done) done();
  }
  void start_read(NetworkContext&, ReadDone done) override {
    if (done) done(Value(), 0);
  }
  void on_message(NetworkContext&, ProcessId, const Message&) override {}
  std::uint64_t local_memory_bytes() const override { return 0; }
  const Codec& codec() const override { return twobit_codec(); }

  std::atomic<int> fired{0};
};

GroupConfig cfg3() {
  GroupConfig cfg;
  cfg.n = 3;
  cfg.t = 1;
  cfg.initial = Value();
  return cfg;
}

TEST(SimTimers, FireInOrderAtVirtualTime) {
  std::vector<std::unique_ptr<ProcessBase>> procs;
  std::vector<TimerHost*> hosts;
  for (ProcessId pid = 0; pid < 3; ++pid) {
    auto host = std::make_unique<TimerHost>(cfg3(), pid);
    hosts.push_back(host.get());
    procs.push_back(std::move(host));
  }
  SimNetwork::Options opt;
  SimNetwork net(std::move(procs), std::move(opt));
  std::vector<Tick> fire_times;
  net.schedule_at(1, [&] {
    net.context(0).schedule(500, [&] { fire_times.push_back(net.now()); });
    net.context(0).schedule(100, [&] { fire_times.push_back(net.now()); });
    net.context(0).schedule(300, [&] { fire_times.push_back(net.now()); });
  });
  ASSERT_TRUE(net.run());
  ASSERT_EQ(fire_times.size(), 3u);
  EXPECT_EQ(fire_times[0], 101);
  EXPECT_EQ(fire_times[1], 301);
  EXPECT_EQ(fire_times[2], 501);
}

TEST(SimTimers, CrashSuppressesPendingTimers) {
  std::vector<std::unique_ptr<ProcessBase>> procs;
  for (ProcessId pid = 0; pid < 3; ++pid) {
    procs.push_back(std::make_unique<TimerHost>(cfg3(), pid));
  }
  SimNetwork::Options opt;
  SimNetwork net(std::move(procs), std::move(opt));
  int fired = 0;
  net.schedule_at(1, [&] {
    net.context(1).schedule(1000, [&] { ++fired; });
    net.crash_at(1, 500);  // crash strictly before the timer is due
  });
  ASSERT_TRUE(net.run());
  EXPECT_EQ(fired, 0) << "a crashed process must not run timer callbacks";
}

TEST(SimTimers, RejectsNonPositiveDelay) {
  std::vector<std::unique_ptr<ProcessBase>> procs;
  for (ProcessId pid = 0; pid < 3; ++pid) {
    procs.push_back(std::make_unique<TimerHost>(cfg3(), pid));
  }
  SimNetwork::Options opt;
  SimNetwork net(std::move(procs), std::move(opt));
  EXPECT_THROW(net.context(0).schedule(0, [] {}), ContractViolation);
}

TEST(ThreadTimers, ChainedTimersFireOnProcessThread) {
  ThreadNetwork::Options opt;
  opt.cfg = cfg3();
  opt.cfg.writer = 0;
  TimerHost* writer_host = nullptr;
  opt.process_factory = [&writer_host](const GroupConfig& cfg,
                                       ProcessId pid) {
    auto host = std::make_unique<TimerHost>(cfg, pid);
    if (pid == cfg.writer) writer_host = host.get();
    return host;
  };
  ThreadNetwork net(opt);
  net.start();
  // Arms the 1us + 1us timer chain.
  ASSERT_TRUE(net.client().write_sync(Value()).status.ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (writer_host->fired.load(std::memory_order_relaxed) < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(writer_host->fired.load(std::memory_order_relaxed), 2)
      << "both chained timers must fire via the dispatcher";
  net.stop();
}

TEST(SocketTimers, ChainedTimersFireOnLoopThread) {
  SocketNetwork::Options opt;
  opt.cfg = cfg3();
  opt.cfg.writer = 0;
  TimerHost* writer_host = nullptr;
  opt.process_factory = [&writer_host](const GroupConfig& cfg,
                                       ProcessId pid) {
    auto host = std::make_unique<TimerHost>(cfg, pid);
    if (pid == cfg.writer) writer_host = host.get();
    return host;
  };
  SocketNetwork net(std::move(opt));
  net.start();
  // Arms the 1us + 1us timer chain.
  ASSERT_TRUE(net.client().write_sync(Value()).status.ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (writer_host->fired.load(std::memory_order_relaxed) < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(writer_host->fired.load(std::memory_order_relaxed), 2)
      << "both chained timers must fire on the event loop";
  net.stop();
}

}  // namespace
}  // namespace tbr
