// The baselines must linearize too: the same adversarial-schedule battery
// the two-bit algorithm faces, across all three ABD-family implementations.
// (If the emulations were structurally right but semantically wrong, this
// suite is what would catch it.)
#include <gtest/gtest.h>

#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

struct BaselineLinCase {
  Algorithm algo;
  std::uint32_t n;
  std::uint32_t t;
  std::uint32_t crashes;
  bool allow_writer_crash;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<BaselineLinCase>& info) {
  const auto& c = info.param;
  std::string name = algorithm_name(c.algo);
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  name += "_n" + std::to_string(c.n) + "t" + std::to_string(c.t) + "c" +
          std::to_string(c.crashes);
  if (c.allow_writer_crash) name += "w";
  name += "_s" + std::to_string(c.seed);
  return name;
}

class BaselineLinearizability
    : public testing::TestWithParam<BaselineLinCase> {};

TEST_P(BaselineLinearizability, HistoryIsAtomic) {
  const auto& c = GetParam();
  SimWorkloadOptions opt;
  opt.cfg.n = c.n;
  opt.cfg.t = c.t;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = c.algo;
  opt.seed = c.seed;
  opt.ops_per_process = 14;
  opt.writer_read_fraction = 0.25;
  opt.think_time_max = 500;
  opt.crashes = c.crashes;
  opt.allow_writer_crash = c.allow_writer_crash;
  opt.crash_horizon = 40'000;
  opt.delay_factory = [seed = c.seed](const GroupConfig& cfg) {
    // Rotate through delay models by seed so the sweep covers them all.
    switch (seed % 3) {
      case 0:
        return make_uniform_delay(1, 1200);
      case 1:
        return make_flipflop_delay(3, 2000, cfg.n);
      default:
        return make_exponential_delay(250, 8000);
    }
  };

  const auto result = run_sim_workload(opt);
  ASSERT_TRUE(result.drained);
  const auto check = result.check_atomicity(opt.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
  if (c.crashes == 0) {
    EXPECT_EQ(result.completed_by_correct, result.quota_of_correct);
  }
}

std::vector<BaselineLinCase> cases() {
  std::vector<BaselineLinCase> out;
  std::uint64_t seed = 1;
  const std::vector<Algorithm> algos = {
      Algorithm::kAbdUnbounded, Algorithm::kAbdBounded, Algorithm::kAttiya};
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> sizes = {
      {2, 0}, {3, 1}, {5, 2}, {7, 3}};
  for (const auto algo : algos) {
    for (const auto& [n, t] : sizes) {
      for (int s = 0; s < 3; ++s) out.push_back({algo, n, t, 0, false, seed++});
      if (t > 0) out.push_back({algo, n, t, t, false, seed++});
    }
    // Writer-crash runs.
    for (int s = 0; s < 4; ++s) {
      out.push_back({algo, 5, 2, 2, true, 500 + seed++});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BaselineLinearizability,
                         testing::ValuesIn(cases()), case_name);

}  // namespace
}  // namespace tbr
