// Cross-cutting property tests: codec fuzzing (malformed frames must throw,
// valid frames must round-trip), non-default writer placement, larger
// groups, and empty-payload values end to end.
#include <gtest/gtest.h>

#include "abd/phased_codec.hpp"
#include "common/rng.hpp"
#include "core/twobit_codec.hpp"
#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

// ---- codec fuzz -------------------------------------------------------------

class CodecFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, GarbageNeverCrashesTwoBitDecode) {
  Rng rng(GetParam());
  const auto& codec = twobit_codec();
  for (int trial = 0; trial < 2000; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform(0, 64));
    std::string bytes(len, '\0');
    for (auto& c : bytes) c = static_cast<char>(rng.uniform(0, 255));
    try {
      const Message msg = codec.decode(bytes);
      // If it parsed, it must re-encode to the same bytes (canonical form).
      EXPECT_EQ(codec.encode(msg), bytes);
    } catch (const ContractViolation&) {
      // rejected: fine
    }
  }
}

TEST_P(CodecFuzz, GarbageNeverCrashesPhasedDecode) {
  Rng rng(GetParam());
  const PhasedCodec codec(abd_unbounded_spec(), 5);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform(0, 80));
    std::string bytes(len, '\0');
    for (auto& c : bytes) c = static_cast<char>(rng.uniform(0, 255));
    try {
      (void)codec.decode(bytes);
    } catch (const ContractViolation&) {
    }
  }
}

TEST_P(CodecFuzz, RandomValidTwoBitFramesRoundTrip) {
  Rng rng(GetParam());
  const auto& codec = twobit_codec();
  for (int trial = 0; trial < 500; ++trial) {
    Message msg;
    msg.type = static_cast<std::uint8_t>(rng.uniform(0, 3));
    if (msg.type <= 1) {
      msg.has_value = true;
      msg.value =
          Value::filler(static_cast<std::size_t>(rng.uniform(0, 300)),
                        static_cast<std::uint8_t>(rng.uniform(0, 255)));
    }
    const Message back = codec.decode(codec.encode(msg));
    EXPECT_EQ(back.type, msg.type);
    EXPECT_EQ(back.has_value, msg.has_value);
    EXPECT_EQ(back.value, msg.value);
  }
}

TEST_P(CodecFuzz, RandomValidPhasedFramesRoundTrip) {
  Rng rng(GetParam());
  const PhasedCodec codec(attiya_spec(), 7);
  for (int trial = 0; trial < 500; ++trial) {
    Message msg;
    msg.type = static_cast<std::uint8_t>(rng.uniform(0, 3));
    msg.aux = rng.uniform(0, 1'000'000);
    msg.seq = rng.uniform(0, 1'000'000);
    if (rng.chance(0.5)) {
      msg.has_value = true;
      msg.value =
          Value::filler(static_cast<std::size_t>(rng.uniform(0, 100)));
    }
    const Message back = codec.decode(codec.encode(msg));
    EXPECT_EQ(back.type, msg.type);
    EXPECT_EQ(back.aux, msg.aux);
    EXPECT_EQ(back.seq, msg.seq);
    EXPECT_EQ(back.has_value, msg.has_value);
    EXPECT_EQ(back.value, msg.value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, testing::Range<std::uint64_t>(0, 4));

// ---- writer placement ------------------------------------------------------------

class WriterPlacement : public testing::TestWithParam<ProcessId> {};

TEST_P(WriterPlacement, AnyProcessCanBeTheWriter) {
  const ProcessId writer = GetParam();
  SimWorkloadOptions opt;
  opt.cfg.n = 5;
  opt.cfg.t = 2;
  opt.cfg.writer = writer;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.seed = 11 + writer;
  opt.ops_per_process = 10;
  opt.invariant_checks = true;
  const auto result = run_sim_workload(opt);
  ASSERT_TRUE(result.drained);
  EXPECT_EQ(result.completed_by_correct, result.quota_of_correct);
  const auto check = result.check_atomicity(opt.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
  // Only the configured writer wrote.
  for (const auto& op : result.ops) {
    if (op.kind == OpRecord::Kind::kWrite) {
      EXPECT_EQ(op.proc, writer);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPositions, WriterPlacement,
                         testing::Values(0u, 2u, 4u));

// ---- scale ------------------------------------------------------------------------

TEST(Scale, TwentyOneProcessesStayAtomicAndLive) {
  SimWorkloadOptions opt;
  opt.cfg.n = 21;
  opt.cfg.t = 10;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.seed = 5;
  opt.ops_per_process = 6;
  opt.crashes = 10;  // the full fault budget
  opt.crash_horizon = 30'000;
  const auto result = run_sim_workload(opt);
  ASSERT_TRUE(result.drained);
  EXPECT_EQ(result.completed_by_correct, result.quota_of_correct);
  const auto check = result.check_atomicity(opt.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Scale, MessageBudgetScalesQuadraticallyAtN33) {
  SimRegisterGroup::Options gopt;
  gopt.cfg.n = 33;
  gopt.cfg.t = 16;
  gopt.cfg.writer = 0;
  gopt.cfg.initial = Value::from_int64(0);
  gopt.algo = Algorithm::kTwoBit;
  SimRegisterGroup group(std::move(gopt));
  group.client().write_sync(Value::from_int64(1));
  group.settle();
  const auto before = group.net().stats().snapshot();
  group.client().write_sync(Value::from_int64(2));
  group.settle();
  EXPECT_EQ(group.net().stats().diff_since(before).total_sent(),
            33ull * 32ull);
}

// ---- value payload edges --------------------------------------------------------------

TEST(PayloadEdges, EmptyValuesFlowThroughEveryAlgorithm) {
  for (const auto algo : all_algorithms()) {
    SimRegisterGroup::Options gopt;
    gopt.cfg.n = 3;
    gopt.cfg.t = 1;
    gopt.cfg.writer = 0;
    gopt.cfg.initial = Value();  // empty initial value
    gopt.algo = algo;
    SimRegisterGroup group(std::move(gopt));
    EXPECT_TRUE(group.client().read_sync(1).value.empty()) << algorithm_name(algo);
    group.client().write_sync(Value());  // writing an empty value is legal
    const auto out = group.client().read_sync(2);
    EXPECT_TRUE(out.value.empty()) << algorithm_name(algo);
    EXPECT_EQ(out.version, 1) << algorithm_name(algo);
  }
}

TEST(PayloadEdges, LargePayloadsAccountedInDataPlane) {
  SimRegisterGroup::Options gopt;
  gopt.cfg.n = 3;
  gopt.cfg.t = 1;
  gopt.cfg.writer = 0;
  gopt.cfg.initial = Value::from_int64(0);
  gopt.algo = Algorithm::kTwoBit;
  SimRegisterGroup group(std::move(gopt));
  group.client().write_sync(Value::filler(100'000));
  group.settle();
  // Control stays 2 bits regardless of payload size.
  EXPECT_EQ(group.net().stats().max_control_bits_per_msg(), 2u);
  EXPECT_GT(group.net().stats().total_data_bits(), 6ull * 100'000 * 8);
}

// ---- cross-algorithm determinism --------------------------------------------------------

TEST(Determinism, WholeWorkloadsAreSeedDeterministicPerAlgorithm) {
  for (const auto algo : all_algorithms()) {
    SimWorkloadOptions opt;
    opt.cfg.n = 5;
    opt.cfg.t = 2;
    opt.cfg.writer = 0;
    opt.cfg.initial = Value::from_int64(0);
    opt.algo = algo;
    opt.seed = 77;
    opt.ops_per_process = 6;
    const auto a = run_sim_workload(opt);
    const auto b = run_sim_workload(opt);
    EXPECT_EQ(a.duration, b.duration) << algorithm_name(algo);
    EXPECT_EQ(a.stats.total_sent(), b.stats.total_sent())
        << algorithm_name(algo);
  }
}

}  // namespace
}  // namespace tbr
