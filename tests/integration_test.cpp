// Cross-module integration: the four algorithms side by side on identical
// workloads, Table-1 relationships between them, and end-to-end behaviour
// that no single-module test covers.
#include <gtest/gtest.h>

#include "abd/phased_process.hpp"
#include "common/bits.hpp"
#include "core/twobit_process.hpp"
#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

constexpr Tick kDelta = 1000;

SimRegisterGroup make_group(Algorithm algo, std::uint32_t n, std::uint32_t t) {
  SimRegisterGroup::Options opt;
  opt.cfg.n = n;
  opt.cfg.t = t;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = algo;
  opt.delay = make_constant_delay(kDelta);
  return SimRegisterGroup(std::move(opt));
}

// All four algorithms produce identical answers on the same op sequence.
TEST(Integration, AllAlgorithmsAgreeOnValues) {
  std::vector<std::vector<std::int64_t>> answers;
  for (const auto algo : all_algorithms()) {
    auto group = make_group(algo, 5, 2);
    std::vector<std::int64_t> seen;
    for (int k = 1; k <= 6; ++k) {
      group.client().write_sync(Value::from_int64(k * 3));
      seen.push_back(group.client().read_sync(static_cast<ProcessId>(k % 5)).value.to_int64());
    }
    answers.push_back(std::move(seen));
  }
  for (std::size_t i = 1; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i], answers[0]);
  }
}

// Table 1 line 3, cross-algorithm: twobit(2) << attiya(n^3) << bounded(n^5),
// and unbounded sits at Θ(log writes) + tags.
TEST(Integration, ControlBitOrderingMatchesTable1) {
  const std::uint32_t n = 5;
  std::map<Algorithm, std::uint64_t> max_bits;
  for (const auto algo : all_algorithms()) {
    auto group = make_group(algo, n, 2);
    for (int k = 1; k <= 8; ++k) group.client().write_sync(Value::from_int64(k));
    group.client().read_sync(2);
    group.settle();
    max_bits[algo] = group.net().stats().max_control_bits_per_msg();
  }
  EXPECT_EQ(max_bits[Algorithm::kTwoBit], 2u);
  EXPECT_LT(max_bits[Algorithm::kTwoBit], max_bits[Algorithm::kAbdUnbounded]);
  EXPECT_LT(max_bits[Algorithm::kAbdUnbounded], max_bits[Algorithm::kAttiya]);
  EXPECT_LT(max_bits[Algorithm::kAttiya], max_bits[Algorithm::kAbdBounded]);
  EXPECT_GE(max_bits[Algorithm::kAttiya], pow_saturating(n, 3));
  EXPECT_GE(max_bits[Algorithm::kAbdBounded], pow_saturating(n, 5));
}

// Table 1 lines 5-6, cross-algorithm, one test: the proposed algorithm ties
// unbounded ABD and strictly beats both bounded baselines.
TEST(Integration, TimingOrderingMatchesTable1) {
  std::map<Algorithm, std::pair<Tick, Tick>> latencies;
  for (const auto algo : all_algorithms()) {
    auto group = make_group(algo, 5, 2);
    const Tick w = group.client().write_sync(Value::from_int64(1)).latency;
    group.settle();
    const Tick r = group.client().read_sync(3).latency;
    latencies[algo] = {w, r};
  }
  EXPECT_EQ(latencies[Algorithm::kTwoBit].first, 2 * kDelta);
  // Writes tie unbounded ABD exactly; steady-state reads tie or beat it
  // (2Δ here — the paper's 4Δ is the worst-case alignment, measured in
  // tests/twobit_timing_test.cpp and bench_time_complexity).
  EXPECT_EQ(latencies[Algorithm::kTwoBit].first,
            latencies[Algorithm::kAbdUnbounded].first);
  EXPECT_LE(latencies[Algorithm::kTwoBit].second,
            latencies[Algorithm::kAbdUnbounded].second);
  EXPECT_LT(latencies[Algorithm::kTwoBit].first,
            latencies[Algorithm::kAbdBounded].first);
  EXPECT_LT(latencies[Algorithm::kTwoBit].second,
            latencies[Algorithm::kAbdBounded].second);
  EXPECT_LT(latencies[Algorithm::kAbdBounded].first,
            latencies[Algorithm::kAttiya].first);
}

// Read-message asymmetry (the paper's conclusion: reads are O(n) for twobit
// and attiya/unbounded, O(n^2) for bounded ABD; writes are O(n^2) for twobit).
TEST(Integration, MessageAsymmetryMatchesTable1) {
  const std::uint32_t n = 9;
  std::map<Algorithm, std::pair<std::uint64_t, std::uint64_t>> msgs;
  for (const auto algo : all_algorithms()) {
    auto group = make_group(algo, n, 4);
    auto before = group.net().stats().snapshot();
    group.client().write_sync(Value::from_int64(1));
    group.settle();
    const auto wmsgs =
        group.net().stats().diff_since(before).total_sent();
    before = group.net().stats().snapshot();
    group.client().read_sync(n - 1);
    group.settle();
    const auto rmsgs =
        group.net().stats().diff_since(before).total_sent();
    msgs[algo] = {wmsgs, rmsgs};
  }
  // twobit: write n(n-1) = O(n^2), read 2(n-1) = O(n).
  EXPECT_EQ(msgs[Algorithm::kTwoBit].first, std::uint64_t{n} * (n - 1));
  EXPECT_EQ(msgs[Algorithm::kTwoBit].second, 2ull * (n - 1));
  // twobit reads strictly cheaper than its writes (read-dominated claim).
  EXPECT_LT(msgs[Algorithm::kTwoBit].second, msgs[Algorithm::kTwoBit].first);
  // bounded ABD pays O(n^2) even for reads.
  EXPECT_GT(msgs[Algorithm::kAbdBounded].second,
            msgs[Algorithm::kTwoBit].second * (n / 2));
}

// Identical workload, all algorithms: atomicity + liveness + traffic sanity.
TEST(Integration, SharedWorkloadAllAlgorithmsAtomic) {
  for (const auto algo : all_algorithms()) {
    SimWorkloadOptions opt;
    opt.cfg.n = 7;
    opt.cfg.t = 3;
    opt.cfg.writer = 0;
    opt.cfg.initial = Value::from_int64(0);
    opt.algo = algo;
    opt.seed = 99;
    opt.ops_per_process = 10;
    opt.writer_read_fraction = 0.2;
    opt.crashes = 2;
    opt.crash_horizon = 25'000;
    const auto result = run_sim_workload(opt);
    EXPECT_TRUE(result.drained) << algorithm_name(algo);
    const auto check = result.check_atomicity(opt.cfg.initial);
    EXPECT_TRUE(check.ok) << algorithm_name(algo) << ": " << check.error;
    EXPECT_EQ(result.completed_by_correct, result.quota_of_correct)
        << algorithm_name(algo);
  }
}

// The two-bit register's value payload flows through unchanged regardless of
// size (framing is data-plane): 0 bytes to 64 KiB.
TEST(Integration, PayloadSizesRoundTrip) {
  auto group = make_group(Algorithm::kTwoBit, 3, 1);
  std::size_t sizes[] = {0, 1, 7, 256, 4096, 65536};
  SeqNo expect_idx = 0;
  for (const auto size : sizes) {
    group.client().write_sync(Value::filler(size, static_cast<std::uint8_t>(size % 251)));
    ++expect_idx;
    const auto out = group.client().read_sync(2);
    EXPECT_EQ(out.version, expect_idx);
    EXPECT_EQ(out.value.size(), size);
    EXPECT_EQ(out.value,
              Value::filler(size, static_cast<std::uint8_t>(size % 251)));
  }
}

// Long-haul: a thousand operations through one group, atomic throughout.
TEST(Integration, LongHaulThousandOps) {
  SimWorkloadOptions opt;
  opt.cfg.n = 5;
  opt.cfg.t = 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.seed = 7;
  opt.ops_per_process = 200;
  opt.think_time_max = 100;
  const auto result = run_sim_workload(opt);
  ASSERT_TRUE(result.drained);
  EXPECT_EQ(result.ops.size(), 1000u);
  const auto check = result.check_atomicity(opt.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
}

// Memory-cost contrast (Table 1 line 4): after many writes the two-bit
// process's history dwarfs unbounded-ABD's O(1) replica state.
TEST(Integration, MemoryContrastTwoBitVsAbd) {
  auto twobit = make_group(Algorithm::kTwoBit, 3, 1);
  auto abd = make_group(Algorithm::kAbdUnbounded, 3, 1);
  for (int k = 1; k <= 300; ++k) {
    twobit.client().write_sync(Value::from_int64(k));
    abd.client().write_sync(Value::from_int64(k));
  }
  twobit.settle();
  abd.settle();
  const auto twobit_mem = twobit.process(1).local_memory_bytes();
  const auto abd_mem = abd.process(1).local_memory_bytes();
  EXPECT_GT(twobit_mem, 300u * 8u);
  EXPECT_LT(abd_mem, 200u);
  EXPECT_GT(twobit_mem, abd_mem * 10);
}

}  // namespace
}  // namespace tbr
