// ~10k-connection loopback smoke: the multi-loop runtime holding a full
// TCP mesh at the scale the epoll rework exists for.
//
// A mesh of n processes is n(n-1)/2 TCP connections — with both endpoints
// in this process, n(n-1) file descriptors. The test sizes n from
// RLIMIT_NOFILE (raising the soft limit to the hard limit first) and aims
// for ~140 processes ≈ 9,730 connections ≈ 19,460 fds; if the budget
// cannot hold at least 100 processes it skips rather than flakes. Then it
// runs real operations end to end and checks the paper's headline
// property still holds at this scale: every control frame carries at most
// two bits of control information.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include "transport/socket_network.hpp"

namespace tbr {
namespace {

// Largest n with n(n-1) fds inside `budget`, capped at `max_n`.
std::uint32_t mesh_size_for(std::uint64_t budget, std::uint32_t max_n) {
  std::uint32_t n = 2;
  while (n < max_n &&
         static_cast<std::uint64_t>(n + 1) * n <= budget) {
    ++n;
  }
  return n;
}

TEST(SocketC10kTest, TenThousandConnectionSmoke) {
  rlimit rl{};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &rl), 0);
  if (rl.rlim_cur < rl.rlim_max) {
    rlimit raised = rl;
    raised.rlim_cur = raised.rlim_max;
    if (setrlimit(RLIMIT_NOFILE, &raised) == 0) rl = raised;
  }

  // Reserve headroom for epoll fds, wake pipes, test infrastructure, and
  // whatever the process already has open.
  constexpr std::uint64_t kOverhead = 512;
  const std::uint64_t budget =
      rl.rlim_cur > kOverhead ? rl.rlim_cur - kOverhead : 0;
  const std::uint32_t n = mesh_size_for(budget, 140);
  if (n < 100) {
    GTEST_SKIP() << "RLIMIT_NOFILE " << rl.rlim_cur
                 << " cannot hold a >=100-process mesh";
  }
  const std::uint32_t connections = n * (n - 1) / 2;
  RecordProperty("processes", static_cast<int>(n));
  RecordProperty("tcp_connections", static_cast<int>(connections));
  ASSERT_GE(connections, 4950u);  // >= 100 processes end to end

  SocketNetwork::Options opt;
  opt.cfg.n = n;
  opt.cfg.t = (n - 1) / 2;  // largest t with 2t < n
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.loops = 4;
  SocketNetwork net(std::move(opt));
  EXPECT_EQ(net.loop_count(), 4u);
  net.start();

  // Smoke ops: each write/read is a full broadcast round over n-1
  // channels plus an n-t reply quorum.
  for (int k = 1; k <= 3; ++k) {
    const OpResult w = net.client().write_sync(Value::from_int64(k));
    ASSERT_TRUE(w.status.ok()) << w.status.message();
  }
  for (const ProcessId pid : {ProcessId{1}, ProcessId{n / 2},
                              ProcessId{n - 1}}) {
    const OpResult r = net.client().read_sync(pid);
    ASSERT_TRUE(r.status.ok()) << r.status.message();
    EXPECT_EQ(r.value.to_int64(), 3);
    EXPECT_EQ(r.version, 3u);
  }

  const auto stats = net.stats_snapshot();
  // 3 writes + 3 reads, every one an O(n) broadcast round.
  EXPECT_GE(stats.total_sent(), 6ull * (n - 1));
  // The two-bit bound survives at 10k-connection scale.
  EXPECT_LE(stats.max_control_bits_per_msg(), 2u);
  const auto bp = net.backpressure_snapshot();
  EXPECT_EQ(bp.parked_now, 0u);
  net.stop();
}

}  // namespace
}  // namespace tbr
