// SwmrChecker sweeps for the fast-path read engines: the same adversarial
// battery the two-bit algorithm and the ABD baselines face — crash plans,
// writer crashes and rotating delay models. The contention in these
// schedules drives the Oh-RAM read down both of its completion paths:
// 1.5-round fast when acks agree, write-back fallback when a concurrent
// write splits them (tests/fastread_test.cpp asserts both paths fire).
#include <gtest/gtest.h>

#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

struct FastReadLinCase {
  Algorithm algo;
  std::uint32_t n;
  std::uint32_t t;
  std::uint32_t crashes;
  bool allow_writer_crash;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<FastReadLinCase>& info) {
  const auto& c = info.param;
  std::string name = algorithm_name(c.algo);
  name += "_n" + std::to_string(c.n) + "t" + std::to_string(c.t) + "c" +
          std::to_string(c.crashes);
  if (c.allow_writer_crash) name += "w";
  name += "_s" + std::to_string(c.seed);
  return name;
}

class FastReadLinearizability
    : public testing::TestWithParam<FastReadLinCase> {};

TEST_P(FastReadLinearizability, HistoryIsAtomic) {
  const auto& c = GetParam();
  SimWorkloadOptions opt;
  opt.cfg.n = c.n;
  opt.cfg.t = c.t;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = c.algo;
  opt.seed = c.seed;
  opt.ops_per_process = 14;
  opt.writer_read_fraction = 0.25;
  opt.think_time_max = 500;
  opt.crashes = c.crashes;
  opt.allow_writer_crash = c.allow_writer_crash;
  opt.crash_horizon = 40'000;
  opt.delay_factory = [seed = c.seed](const GroupConfig& cfg) {
    // Rotate through delay models by seed so the sweep covers them all.
    switch (seed % 3) {
      case 0:
        return make_uniform_delay(1, 1200);
      case 1:
        return make_flipflop_delay(3, 2000, cfg.n);
      default:
        return make_exponential_delay(250, 8000);
    }
  };

  const auto result = run_sim_workload(opt);
  ASSERT_TRUE(result.drained);
  const auto check = result.check_atomicity(opt.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
  if (c.crashes == 0) {
    EXPECT_EQ(result.completed_by_correct, result.quota_of_correct);
  }
}

std::vector<FastReadLinCase> cases() {
  std::vector<FastReadLinCase> out;
  std::uint64_t seed = 1;
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> sizes = {
      {2, 0}, {3, 1}, {5, 2}, {7, 3}};
  for (const auto algo : fastread_algorithms()) {
    for (const auto& [n, t] : sizes) {
      for (int s = 0; s < 3; ++s) out.push_back({algo, n, t, 0, false, seed++});
      if (t > 0) out.push_back({algo, n, t, t, false, seed++});
    }
    // Writer-crash runs: a mid-write crash leaves a value adopted by some
    // processes only; readers must still converge on one order (Oh-RAM
    // acks disagree → fallback; time-efficient readers re-echo the max).
    for (int s = 0; s < 4; ++s) {
      out.push_back({algo, 5, 2, 2, true, 500 + seed++});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FastReadLinearizability,
                         testing::ValuesIn(cases()), case_name);

}  // namespace
}  // namespace tbr
