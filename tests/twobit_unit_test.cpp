// Handler-level unit tests of TwoBitProcess: messages are injected directly
// through a mock NetworkContext and every send is inspected. This pins the
// per-line behaviour of Fig. 1 (parking, R1 forward sets, R2 catch-ups,
// parked-read release) without a simulator in the loop.
#include <gtest/gtest.h>

#include "core/twobit_process.hpp"

namespace tbr {
namespace {

class MockContext final : public NetworkContext {
 public:
  MockContext(ProcessId self, std::uint32_t n) : self_(self), n_(n) {}

  void send(ProcessId to, const Message& msg) override {
    TBR_ENSURE(to < n_ && to != self_, "mock: bad destination");
    sent.push_back({to, msg});
  }
  ProcessId self() const override { return self_; }
  std::uint32_t process_count() const override { return n_; }
  Tick now() const override { return clock; }
  void schedule(Tick delay, std::function<void()> fn) override {
    timers.push_back({clock + delay, std::move(fn)});
  }

  struct Sent {
    ProcessId to;
    Message msg;
  };
  std::vector<Sent> sent;
  std::vector<std::pair<Tick, std::function<void()>>> timers;
  Tick clock = 0;

  std::vector<Sent> take() {
    auto out = std::move(sent);
    sent.clear();
    return out;
  }

 private:
  ProcessId self_;
  std::uint32_t n_;
};

GroupConfig cfg5() {
  GroupConfig cfg;
  cfg.n = 5;
  cfg.t = 2;
  cfg.writer = 0;
  cfg.initial = Value::from_int64(0);
  return cfg;
}

Message write_frame(SeqNo index, std::int64_t value) {
  Message msg;
  msg.type = static_cast<std::uint8_t>(index % 2 == 0 ? TwoBitType::kWrite0
                                                      : TwoBitType::kWrite1);
  msg.has_value = true;
  msg.value = Value::from_int64(value);
  msg.debug_index = index;
  return msg;
}

Message control_frame(TwoBitType type) {
  Message msg;
  msg.type = static_cast<std::uint8_t>(type);
  return msg;
}

// ---- write path -----------------------------------------------------------------

TEST(TwoBitUnit, WriterFirstWriteBroadcastsToAll) {
  MockContext net(0, 5);
  TwoBitProcess writer(cfg5(), 0);
  bool done = false;
  writer.start_write(net, Value::from_int64(7), [&] { done = true; });
  EXPECT_FALSE(done);  // quorum is 3; only self so far
  const auto sent = net.take();
  ASSERT_EQ(sent.size(), 4u);  // line 2: everyone at wsn-1
  for (const auto& s : sent) {
    EXPECT_EQ(s.msg.type, static_cast<std::uint8_t>(TwoBitType::kWrite1));
    EXPECT_EQ(s.msg.value.to_int64(), 7);
  }
  EXPECT_EQ(writer.wsync(0), 1);
}

TEST(TwoBitUnit, WriteCompletesOnEchoQuorum) {
  MockContext net(0, 5);
  TwoBitProcess writer(cfg5(), 0);
  bool done = false;
  writer.start_write(net, Value::from_int64(7), [&] { done = true; });
  net.take();
  // Echoes arrive from p1 and p2: with self that is the n-t = 3 quorum.
  writer.on_message(net, 1, write_frame(1, 7));
  EXPECT_FALSE(done);
  writer.on_message(net, 2, write_frame(1, 7));
  EXPECT_TRUE(done);
  EXPECT_EQ(writer.wsync(1), 1);
  EXPECT_EQ(writer.wsync(2), 1);
  EXPECT_EQ(writer.wsync(3), 0);  // no echo from p3/p4 yet
}

TEST(TwoBitUnit, SecondWriteOnlyTargetsCaughtUpPeers) {
  MockContext net(0, 5);
  TwoBitProcess writer(cfg5(), 0);
  bool done = false;
  writer.start_write(net, Value::from_int64(1), [&] { done = true; });
  net.take();
  writer.on_message(net, 1, write_frame(1, 1));
  writer.on_message(net, 2, write_frame(1, 1));
  ASSERT_TRUE(done);
  net.take();  // (no sends expected, but clear anyway)

  writer.start_write(net, Value::from_int64(2), [] {});
  const auto sent = net.take();
  // line 2: only p1 and p2 are at wsn-1 = 1; p3/p4 never echoed value 1.
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[0].to, 1u);
  EXPECT_EQ(sent[1].to, 2u);
  EXPECT_EQ(sent[0].msg.type, static_cast<std::uint8_t>(TwoBitType::kWrite0));
}

// ---- reception: R1 forwarding ------------------------------------------------------

TEST(TwoBitUnit, FirstValueForwardedToAllIncludingSender) {
  MockContext net(1, 5);
  TwoBitProcess p1(cfg5(), 1);
  p1.on_message(net, 0, write_frame(1, 7));
  const auto sent = net.take();
  // Line 15: every ℓ with w_sync[ℓ] = 0 — that is p0 (the echo/ack), p2,
  // p3, p4. Four frames.
  ASSERT_EQ(sent.size(), 4u);
  std::vector<ProcessId> dests;
  for (const auto& s : sent) dests.push_back(s.to);
  EXPECT_EQ(dests, (std::vector<ProcessId>{0, 2, 3, 4}));
  EXPECT_EQ(p1.wsync(1), 1);
  EXPECT_EQ(p1.wsync(0), 1);  // line 18
  EXPECT_EQ(p1.history().back().to_int64(), 7);
}

TEST(TwoBitUnit, DuplicateValueNotForwardedAgain) {
  MockContext net(1, 5);
  TwoBitProcess p1(cfg5(), 1);
  p1.on_message(net, 0, write_frame(1, 7));
  net.take();
  // p2 forwards the same value: wsn == w_sync[self], no R1, no R2.
  p1.on_message(net, 2, write_frame(1, 7));
  EXPECT_TRUE(net.take().empty());
  EXPECT_EQ(p1.wsync(2), 1);  // line 18 still ran
}

// ---- reception: line 11 parking -----------------------------------------------------

TEST(TwoBitUnit, OutOfParityFrameParksUntilPredecessor) {
  MockContext net(1, 5);
  TwoBitProcess p1(cfg5(), 1);
  // Value #2 (WRITE0) overtakes value #1 (WRITE1) on the channel from p0.
  p1.on_message(net, 0, write_frame(2, 20));
  EXPECT_TRUE(p1.has_parked_write(0));
  EXPECT_EQ(p1.wsync(0), 0);  // nothing processed yet
  EXPECT_TRUE(net.take().empty());

  // The predecessor arrives: both process, in order.
  p1.on_message(net, 0, write_frame(1, 10));
  EXPECT_FALSE(p1.has_parked_write(0));
  EXPECT_EQ(p1.wsync(0), 2);
  EXPECT_EQ(p1.wsync(1), 2);
  const auto hist = p1.history();
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[1].to_int64(), 10);
  EXPECT_EQ(hist[2].to_int64(), 20);
  // Forwards went out for both values — but with view-scoped fan-out:
  // value 1 to the four peers at level 0; value 2 only to p0, the single
  // peer p1 believes has value 1 (the rest catch up via R2 later).
  const auto sent = net.take();
  ASSERT_EQ(sent.size(), 5u);
  int value2_frames = 0;
  for (const auto& s : sent) {
    if (s.msg.debug_index == 2) {
      ++value2_frames;
      EXPECT_EQ(s.to, 0u);
    }
  }
  EXPECT_EQ(value2_frames, 1);
}

TEST(TwoBitUnit, DoubleBypassViolatesP1AndIsCaught) {
  MockContext net(1, 5);
  TwoBitProcess p1(cfg5(), 1);
  p1.on_message(net, 0, write_frame(2, 20));  // parked
  // A third frame with the same wrong parity cannot occur under the
  // alternating-bit discipline; injecting one must trip the P1 contract.
  EXPECT_THROW(p1.on_message(net, 0, write_frame(4, 40)), ContractViolation);
}

// ---- reception: R2 catch-up -----------------------------------------------------------

TEST(TwoBitUnit, LaggingSenderGetsItsNextValue) {
  MockContext net(1, 5);
  TwoBitProcess p1(cfg5(), 1);
  // p1 learns values 1..3 from p0.
  for (SeqNo k = 1; k <= 3; ++k) {
    p1.on_message(net, 0, write_frame(k, k * 10));
  }
  net.take();
  // p4 only now echoes value 1 (it lags): R2 answers with value 2 only.
  p1.on_message(net, 4, write_frame(1, 10));
  const auto sent = net.take();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].to, 4u);
  EXPECT_EQ(sent[0].msg.debug_index, 2);
  EXPECT_EQ(sent[0].msg.value.to_int64(), 20);
  EXPECT_EQ(p1.wsync(4), 1);  // line 18
}

TEST(TwoBitUnit, CatchUpChainWalksTheWholeHistory) {
  MockContext net(1, 5);
  TwoBitProcess p1(cfg5(), 1);
  for (SeqNo k = 1; k <= 4; ++k) {
    p1.on_message(net, 0, write_frame(k, k * 10));
  }
  net.take();
  // p4 echoes 1, 2, 3 in turn; each R2 reply hands it the next value.
  for (SeqNo k = 1; k <= 3; ++k) {
    p1.on_message(net, 4, write_frame(k, k * 10));
    const auto sent = net.take();
    ASSERT_EQ(sent.size(), 1u) << "k=" << k;
    EXPECT_EQ(sent[0].msg.debug_index, k + 1);
  }
  EXPECT_EQ(p1.wsync(4), 3);
}

// ---- READ / PROCEED ----------------------------------------------------------------------

TEST(TwoBitUnit, FreshReaderGetsImmediateProceed) {
  MockContext net(1, 5);
  TwoBitProcess p1(cfg5(), 1);
  p1.on_message(net, 0, write_frame(1, 10));
  net.take();
  // p0 is known fresh (w_sync[0] = 1 = our own level): PROCEED at once.
  p1.on_message(net, 0, control_frame(TwoBitType::kRead));
  const auto sent = net.take();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].to, 0u);
  EXPECT_EQ(sent[0].msg.type, static_cast<std::uint8_t>(TwoBitType::kProceed));
}

TEST(TwoBitUnit, StaleReaderParksUntilItCatchesUp) {
  MockContext net(1, 5);
  TwoBitProcess p1(cfg5(), 1);
  p1.on_message(net, 0, write_frame(1, 10));
  net.take();
  // p3 (whose view we hold at 0) asks to read: freshness says wait.
  p1.on_message(net, 3, control_frame(TwoBitType::kRead));
  EXPECT_TRUE(net.take().empty());
  EXPECT_EQ(p1.parked_read_count(), 1u);
  // p3's echo of value 1 arrives: the parked READ releases.
  p1.on_message(net, 3, write_frame(1, 10));
  const auto sent = net.take();
  EXPECT_EQ(p1.parked_read_count(), 0u);
  ASSERT_FALSE(sent.empty());
  bool proceed_to_p3 = false;
  for (const auto& s : sent) {
    if (s.to == 3 &&
        s.msg.type == static_cast<std::uint8_t>(TwoBitType::kProceed)) {
      proceed_to_p3 = true;
    }
  }
  EXPECT_TRUE(proceed_to_p3);
}

TEST(TwoBitUnit, ProceedIncrementsRsync) {
  MockContext net(1, 5);
  TwoBitProcess p1(cfg5(), 1);
  EXPECT_EQ(p1.rsync(2), 0);
  p1.on_message(net, 2, control_frame(TwoBitType::kProceed));
  EXPECT_EQ(p1.rsync(2), 1);
  p1.on_message(net, 2, control_frame(TwoBitType::kProceed));
  EXPECT_EQ(p1.rsync(2), 2);
}

TEST(TwoBitUnit, ReadRunsTwoStagesAgainstQuorum) {
  MockContext net(1, 5);
  TwoBitProcess p1(cfg5(), 1);
  p1.on_message(net, 0, write_frame(1, 10));
  net.take();

  Value seen;
  SeqNo idx = -1;
  bool done = false;
  p1.start_read(net, [&](const Value& v, SeqNo i) {
    seen = v;
    idx = i;
    done = true;
  });
  const auto reads = net.take();
  ASSERT_EQ(reads.size(), 4u);  // line 6: READ to everyone else
  // Two PROCEEDs complete stage 1 (self + 2 = quorum 3); stage 2 needs
  // n-t processes with w_sync >= 1 — currently only self and p0.
  p1.on_message(net, 0, control_frame(TwoBitType::kProceed));
  p1.on_message(net, 2, control_frame(TwoBitType::kProceed));
  EXPECT_FALSE(done);
  // p2's echo of value 1 raises w_sync[2] to 1: stage 2 quorum complete.
  p1.on_message(net, 2, write_frame(1, 10));
  ASSERT_TRUE(done);
  EXPECT_EQ(seen.to_int64(), 10);
  EXPECT_EQ(idx, 1);
}

TEST(TwoBitUnit, ReadOfInitialValueNeedsNoWrites) {
  MockContext net(1, 5);
  TwoBitProcess p1(cfg5(), 1);
  bool done = false;
  p1.start_read(net, [&](const Value& v, SeqNo i) {
    EXPECT_EQ(v.to_int64(), 0);
    EXPECT_EQ(i, 0);
    done = true;
  });
  net.take();
  p1.on_message(net, 0, control_frame(TwoBitType::kProceed));
  EXPECT_FALSE(done);
  p1.on_message(net, 2, control_frame(TwoBitType::kProceed));
  // Stage 2 for sn = 0 is trivially satisfied by everyone.
  EXPECT_TRUE(done);
}

// ---- misc ------------------------------------------------------------------------------------

TEST(TwoBitUnit, CrashedProcessRejectsDeliveries) {
  MockContext net(1, 5);
  TwoBitProcess p1(cfg5(), 1);
  p1.on_crash();
  EXPECT_TRUE(p1.crashed());
  EXPECT_THROW(p1.on_message(net, 0, write_frame(1, 10)), ContractViolation);
}

TEST(TwoBitUnit, MessagesFromSelfRejected) {
  MockContext net(1, 5);
  TwoBitProcess p1(cfg5(), 1);
  EXPECT_THROW(p1.on_message(net, 1, write_frame(1, 10)), ContractViolation);
}

TEST(TwoBitUnit, WriteFramesCountedPerDestination) {
  MockContext net(0, 5);
  TwoBitProcess writer(cfg5(), 0);
  writer.start_write(net, Value::from_int64(1), [] {});
  EXPECT_EQ(writer.write_frames_sent_to(1), 1);
  EXPECT_EQ(writer.write_frames_sent_to(4), 1);
  writer.on_message(net, 1, write_frame(1, 1));
  writer.on_message(net, 2, write_frame(1, 1));
  writer.start_write(net, Value::from_int64(2), [] {});
  EXPECT_EQ(writer.write_frames_sent_to(1), 2);
  EXPECT_EQ(writer.write_frames_sent_to(4), 1);  // p4 still at value 0
}

}  // namespace
}  // namespace tbr
