// Timing tests under the paper's model (all delays = Δ, instantaneous local
// steps): write <= 2Δ and read <= 4Δ (Table 1 lines 5-6 for the proposed
// algorithm), including the worst-case read/write phase alignment.
#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "workload/sim_register_group.hpp"

namespace tbr {
namespace {

constexpr Tick kDelta = 1000;

SimRegisterGroup make_group(std::uint32_t n, std::uint32_t t) {
  SimRegisterGroup::Options opt;
  opt.cfg.n = n;
  opt.cfg.t = t;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.delay = make_constant_delay(kDelta);
  return SimRegisterGroup(std::move(opt));
}

TEST(TwoBitTiming, WriteTakesExactlyTwoDelta) {
  for (const std::uint32_t n : {3u, 5u, 9u}) {
    auto group = make_group(n, (n - 1) / 2);
    for (int k = 1; k <= 5; ++k) {
      const Tick latency = group.client().write_sync(Value::from_int64(k)).latency;
      EXPECT_EQ(latency, 2 * kDelta) << "n=" << n << " write#" << k;
      group.settle();
    }
  }
}

TEST(TwoBitTiming, WritePipelineWithoutSettleStaysTwoDelta) {
  // Back-to-back writes (no settle): each still completes in 2Δ because the
  // quorum echo is the first-hop response of the previous dissemination.
  auto group = make_group(5, 2);
  for (int k = 1; k <= 10; ++k) {
    EXPECT_EQ(group.client().write_sync(Value::from_int64(k)).latency, 2 * kDelta);
  }
}

TEST(TwoBitTiming, SteadyStateReadTakesTwoDelta) {
  // With no write in flight, the responder freshness check passes
  // immediately and stage 2 is already satisfied: READ + PROCEED = 2Δ.
  auto group = make_group(5, 2);
  group.client().write_sync(Value::from_int64(1));
  group.settle();
  const auto out = group.client().read_sync(3);
  EXPECT_EQ(out.latency, 2 * kDelta);
}

TEST(TwoBitTiming, ReadNeverExceedsFourDeltaAcrossAllPhaseOffsets) {
  // Worst case: the read starts while a write is disseminating. Sweep every
  // alignment of read start vs write start within [0, 2Δ] and require the
  // paper's 4Δ bound at every offset and at every reader.
  for (const std::uint32_t n : {3u, 5u, 7u}) {
    for (Tick offset = 0; offset <= 2 * kDelta; offset += kDelta / 4) {
      auto group = make_group(n, (n - 1) / 2);
      group.client().write_sync(Value::from_int64(1));
      group.settle();

      bool write_done = false;
      Tick read_latency = -1;
      bool read_done = false;
      const Tick base = group.net().now();
      group.net().schedule_at(base, [&] {
        group.begin_write(Value::from_int64(2), [&] { write_done = true; });
      });
      group.net().schedule_at(base + offset, [&] {
        const Tick start = group.net().now();
        group.begin_read(n - 1, [&, start](const Value&, SeqNo) {
          read_latency = group.net().now() - start;
          read_done = true;
        });
      });
      ASSERT_TRUE(group.net().run());
      EXPECT_TRUE(write_done);
      ASSERT_TRUE(read_done);
      EXPECT_LE(read_latency, 4 * kDelta)
          << "n=" << n << " offset=" << offset;
      EXPECT_GE(read_latency, 2 * kDelta);
    }
  }
}

TEST(TwoBitTiming, EqualDelaysWorstCaseReadIsThreeDelta) {
  // With every delay exactly Δ the binding chain is: responder adopts x,
  // then waits for the reader's forward of x (arrives 2Δ after the write),
  // then PROCEEDs (3Δ). The paper's 4Δ is the supremum over *heterogeneous*
  // delays <= Δ — see FourDeltaSupremumIsApproachable below.
  Tick worst = 0;
  for (Tick offset = 0; offset <= 2 * kDelta; offset += 50) {
    auto g2 = make_group(3, 1);
    g2.client().write_sync(Value::from_int64(1));
    g2.settle();
    Tick latency = 0;
    bool done = false;
    const Tick base = g2.net().now();
    g2.net().schedule_at(base, [&] {
      g2.begin_write(Value::from_int64(2), [] {});
    });
    g2.net().schedule_at(base + offset, [&] {
      const Tick start = g2.net().now();
      g2.begin_read(2, [&, start](const Value&, SeqNo) {
        latency = g2.net().now() - start;
        done = true;
      });
    });
    (void)g2.net().run();
    ASSERT_TRUE(done);
    worst = std::max(worst, latency);
  }
  EXPECT_EQ(worst, 3 * kDelta);
}

// Per-channel delay table (defaults to Δ), for adversarial alignments.
class PairwiseDelay final : public DelayModel {
 public:
  explicit PairwiseDelay(Tick dflt) : default_(dflt) {}
  void set(ProcessId from, ProcessId to, Tick d) {
    table_[{from, to}] = d;
  }
  Tick delay(Rng&, ProcessId from, ProcessId to, const Message&) override {
    const auto it = table_.find({from, to});
    return it == table_.end() ? default_ : it->second;
  }

 private:
  Tick default_;
  std::map<std::pair<ProcessId, ProcessId>, Tick> table_;
};

TEST(TwoBitTiming, FourDeltaSupremumIsApproachable) {
  // Adversarial heterogeneous delays, all <= Δ: the writer reaches the
  // responders almost instantly (they become "fresh" just before the READ
  // arrives), while the reader learns the value a full Δ later and its
  // catch-up forward takes another Δ. Read latency = 4Δ - 2 ticks.
  //
  //   p0 = writer, p1/p2 = responders... reader = p2; write at Δ-2, read at 0.
  auto delay = std::make_unique<PairwiseDelay>(kDelta);
  delay->set(0, 1, 1);  // writer -> responder p1: instant freshness
  auto* delay_raw = delay.get();
  SimRegisterGroup::Options opt;
  opt.cfg.n = 3;
  opt.cfg.t = 1;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.delay = std::move(delay);
  SimRegisterGroup group(std::move(opt));
  (void)delay_raw;

  Tick latency = -1;
  const Tick base = group.net().now();
  group.net().schedule_at(base + kDelta - 2, [&] {
    group.begin_write(Value::from_int64(1), [] {});
  });
  group.net().schedule_at(base, [&] {
    const Tick start = group.net().now();
    group.begin_read(2, [&, start](const Value& v, SeqNo) {
      latency = group.net().now() - start;
      EXPECT_EQ(v.to_int64(), 1);  // forced to return the fresh value
    });
  });
  ASSERT_TRUE(group.net().run());
  EXPECT_EQ(latency, 4 * kDelta - 2);
}

TEST(TwoBitTiming, ReadConcurrentWithWriteReturnsOldOrNew) {
  // At any alignment the read must return value 1 or 2, never anything else.
  for (Tick offset = 0; offset <= 2 * kDelta; offset += 250) {
    auto group = make_group(5, 2);
    group.client().write_sync(Value::from_int64(1));
    group.settle();
    std::int64_t seen = -1;
    const Tick base = group.net().now();
    group.net().schedule_at(base, [&] {
      group.begin_write(Value::from_int64(2), [] {});
    });
    group.net().schedule_at(base + offset, [&] {
      group.begin_read(4, [&](const Value& v, SeqNo) {
        seen = v.to_int64();
      });
    });
    (void)group.net().run();
    EXPECT_TRUE(seen == 1 || seen == 2) << "offset=" << offset;
  }
}

TEST(TwoBitTiming, CrashDoesNotSlowWriteBeyondTwoDelta) {
  // With f <= t crashed processes the quorum is still reached on the first
  // echo wave: latency stays 2Δ (the dead just never answer).
  auto group = make_group(5, 2);
  group.crash(3);
  group.crash(4);
  for (int k = 1; k <= 3; ++k) {
    EXPECT_EQ(group.client().write_sync(Value::from_int64(k)).latency, 2 * kDelta);
    group.settle();
  }
}

TEST(TwoBitTiming, StragglerDoesNotDelayQuorumOps) {
  // One slow process must not appear on the critical path: quorum waits are
  // over the fastest n-t.
  SimRegisterGroup::Options opt;
  opt.cfg.n = 5;
  opt.cfg.t = 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.algo = Algorithm::kTwoBit;
  opt.delay = make_straggler_delay(4, /*slow=*/50 * kDelta, /*fast=*/kDelta);
  SimRegisterGroup group(std::move(opt));
  const Tick w = group.client().write_sync(Value::from_int64(1)).latency;
  EXPECT_EQ(w, 2 * kDelta);
  const auto r = group.client().read_sync(1);
  EXPECT_EQ(r.value.to_int64(), 1);
  EXPECT_LE(r.latency, 4 * kDelta);
}

}  // namespace
}  // namespace tbr
