// Reliable-link layer (src/link): codec round-trips, exactly-once in-order
// delivery over lossy/reordering channels, retransmission behaviour, the
// give-up (membership) path, and full register atomicity when the two-bit
// algorithm rides the link across a network with out-of-model frame loss —
// the deployment fix for the D8 boundary finding.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "core/twobit_codec.hpp"
#include "core/twobit_process.hpp"
#include "link/reliable_link.hpp"
#include "runtime/thread_network.hpp"
#include "sim/sim_network.hpp"
#include "workload/sim_workload.hpp"

namespace tbr {
namespace {

// ---- codec ---------------------------------------------------------------------

TEST(LinkCodec, DataRoundTrip) {
  Message msg;
  msg.type = static_cast<std::uint8_t>(LinkType::kData);
  msg.seq = 123456789;
  msg.value = Value::from_string("payload-bytes");
  msg.has_value = true;
  const auto bytes = link_codec().encode(msg);
  const auto back = link_codec().decode(bytes);
  EXPECT_EQ(back.type, msg.type);
  EXPECT_EQ(back.seq, msg.seq);
  EXPECT_TRUE(back.has_value);
  EXPECT_EQ(back.value, msg.value);
}

TEST(LinkCodec, AckRoundTrip) {
  Message msg;
  msg.type = static_cast<std::uint8_t>(LinkType::kAck);
  msg.seq = 42;
  const auto bytes = link_codec().encode(msg);
  const auto back = link_codec().decode(bytes);
  EXPECT_EQ(back.type, msg.type);
  EXPECT_EQ(back.seq, 42);
  EXPECT_FALSE(back.has_value);
}

TEST(LinkCodec, AccountsTransportHeader) {
  Message data;
  data.type = static_cast<std::uint8_t>(LinkType::kData);
  data.seq = 7;
  data.value = Value::filler(10);
  data.has_value = true;
  const auto acc = link_codec().account(data);
  EXPECT_EQ(acc.control_bits, LinkCodec::kHeaderControlBits);
  EXPECT_EQ(acc.data_bits, 32u + 80u);
}

TEST(LinkCodec, RejectsMalformed) {
  EXPECT_THROW((void)link_codec().decode(""), ContractViolation);
  EXPECT_THROW((void)link_codec().decode("\x05"), ContractViolation);
  // Truncated DATA (claims 100-byte payload, carries none).
  Message msg;
  msg.type = static_cast<std::uint8_t>(LinkType::kData);
  msg.seq = 0;
  msg.value = Value::filler(100);
  msg.has_value = true;
  auto bytes = link_codec().encode(msg);
  bytes.resize(bytes.size() - 50);
  EXPECT_THROW((void)link_codec().decode(bytes), ContractViolation);
}

// ---- probe: exactly-once, in-order delivery -------------------------------------

// A minimal protocol that numbers its frames, so the test can assert the
// service the link claims to provide: each peer's stream arrives exactly
// once, in send order, no matter what the network drops or reorders.
// Emissions are queued with queue_emit() and flushed by start_write(),
// which the wrapping link forwards with its *inner* context — exactly how a
// real protocol's sends reach the link.
class ProbeProcess final : public RegisterProcessBase {
 public:
  ProbeProcess(GroupConfig cfg, ProcessId self)
      : RegisterProcessBase(cfg, self) {}

  void queue_emit(ProcessId to, int count, int base) {
    plan_.push_back({to, count, base});
  }

  void start_write(NetworkContext& net, Value, WriteDone done) override {
    for (const auto& e : plan_) {
      for (int k = 0; k < e.count; ++k) {
        Message msg;
        msg.type = static_cast<std::uint8_t>(TwoBitType::kWrite0);
        msg.value = Value::from_int64(e.base + k);
        msg.has_value = true;
        msg.wire = twobit_codec().account(msg);
        net.send(e.to, msg);
      }
    }
    plan_.clear();
    if (done) done();
  }
  void start_read(NetworkContext&, ReadDone) override {
    TBR_ENSURE(false, "probe has no read operation");
  }
  void on_message(NetworkContext&, ProcessId from,
                  const Message& msg) override {
    received[from].push_back(msg.value.to_int64());
  }
  std::uint64_t local_memory_bytes() const override { return 0; }
  const Codec& codec() const override { return twobit_codec(); }

  std::map<ProcessId, std::vector<std::int64_t>> received;

 private:
  struct Emission {
    ProcessId to;
    int count;
    int base;
  };
  std::vector<Emission> plan_;
};

struct ProbeNet {
  explicit ProbeNet(std::uint32_t n, double loss, std::uint64_t seed,
                    LinkOptions lopt = LinkOptions()) {
    GroupConfig cfg;
    cfg.n = n;
    cfg.t = (n - 1) / 2;
    cfg.initial = Value::from_int64(0);
    std::vector<std::unique_ptr<ProcessBase>> procs;
    for (ProcessId pid = 0; pid < n; ++pid) {
      auto probe = std::make_unique<ProbeProcess>(cfg, pid);
      probes.push_back(probe.get());
      auto linked = std::make_unique<ReliableLinkProcess>(
          cfg, pid, std::move(probe), lopt);
      links.push_back(linked.get());
      procs.push_back(std::move(linked));
    }
    SimNetwork::Options nopt;
    nopt.seed = seed;
    nopt.loss_rate = loss;
    nopt.delay = make_uniform_delay(1, 900);  // heavy reordering
    net = std::make_unique<SimNetwork>(std::move(procs), std::move(nopt));
  }

  std::vector<ProbeProcess*> probes;
  std::vector<ReliableLinkProcess*> links;
  std::unique_ptr<SimNetwork> net;

  /// Flush queued emissions at process `pid` through its link.
  void flush(ProcessId pid) {
    net->schedule_at(net->now() + 1, [this, pid] {
      links[pid]->start_write(net->context(pid), Value(), [] {});
    });
  }
};

TEST(ReliableLink, InOrderExactlyOnceWithoutLoss) {
  ProbeNet pn(3, 0.0, 7);
  pn.probes[0]->queue_emit(1, 64, 0);
  pn.flush(0);
  ASSERT_TRUE(pn.net->run());
  std::vector<std::int64_t> expect(64);
  for (int k = 0; k < 64; ++k) expect[static_cast<std::size_t>(k)] = k;
  EXPECT_EQ(pn.probes[1]->received[0], expect);
  EXPECT_EQ(pn.links[0]->link_stats().retransmit_frames, 0u);
}

class ReliableLinkLossy : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ReliableLinkLossy, InOrderExactlyOnceUnderHeavyLoss) {
  // 25% of all frames (data AND acks) evaporate; both directions stream
  // concurrently. The service must still be exactly-once, in-order.
  ProbeNet pn(3, 0.25, GetParam());
  pn.probes[0]->queue_emit(1, 50, 0);
  pn.probes[0]->queue_emit(2, 50, 1000);
  pn.probes[1]->queue_emit(0, 50, 2000);
  pn.flush(0);
  pn.flush(1);
  ASSERT_TRUE(pn.net->run(5'000'000));
  std::vector<std::int64_t> expect_a(50), expect_b(50), expect_c(50);
  for (int k = 0; k < 50; ++k) {
    expect_a[static_cast<std::size_t>(k)] = k;
    expect_b[static_cast<std::size_t>(k)] = 1000 + k;
    expect_c[static_cast<std::size_t>(k)] = 2000 + k;
  }
  EXPECT_EQ(pn.probes[1]->received[0], expect_a);
  EXPECT_EQ(pn.probes[2]->received[0], expect_b);
  EXPECT_EQ(pn.probes[0]->received[1], expect_c);
  // Loss happened, so the link must have worked for a living.
  EXPECT_GT(pn.net->frames_lost(), 0u);
  EXPECT_GT(pn.links[0]->link_stats().retransmit_frames, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReliableLinkLossy,
                         testing::Range<std::uint64_t>(1, 13));

TEST(ReliableLink, WindowBacklogDrains) {
  LinkOptions lopt;
  lopt.window = 4;  // force the backlog path: 40 frames through a 4-window
  ProbeNet pn(3, 0.10, 11, lopt);
  pn.probes[0]->queue_emit(1, 40, 0);
  pn.flush(0);
  ASSERT_TRUE(pn.net->run(5'000'000));
  ASSERT_EQ(pn.probes[1]->received[0].size(), 40u);
  EXPECT_TRUE(std::is_sorted(pn.probes[1]->received[0].begin(),
                             pn.probes[1]->received[0].end()));
  EXPECT_EQ(pn.links[0]->queued_to(1), 0u);
}

TEST(ReliableLink, GivesUpOnCrashedPeerAfterMaxRetries) {
  LinkOptions lopt;
  lopt.max_retries = 5;
  ProbeNet pn(3, 0.0, 3, lopt);
  pn.net->schedule_at(1, [&] { pn.net->crash_now(1); });
  pn.probes[0]->queue_emit(1, 8, 0);
  pn.flush(0);
  ASSERT_TRUE(pn.net->run(5'000'000)) << "give-up must keep the sim finite";
  EXPECT_TRUE(pn.links[0]->peer_dead(1));
  EXPECT_EQ(pn.links[0]->link_stats().peers_declared_dead, 1u);
  EXPECT_EQ(pn.links[0]->queued_to(1), 0u);
  // The live pair is unaffected.
  pn.probes[0]->queue_emit(2, 8, 0);
  pn.flush(0);
  ASSERT_TRUE(pn.net->run(5'000'000));
  EXPECT_EQ(pn.probes[2]->received[0].size(), 8u);
}

TEST(ReliableLink, DuplicateDataIsSuppressedAndReAcked) {
  // Directly deliver a crafted duplicate: receiver must re-ACK, not re-deliver.
  ProbeNet pn(2, 0.0, 5);
  pn.probes[0]->queue_emit(1, 3, 0);
  pn.flush(0);
  ASSERT_TRUE(pn.net->run());
  ASSERT_EQ(pn.probes[1]->received[0].size(), 3u);
  // Replay link seq 0 at the receiving link.
  Message dup;
  dup.type = static_cast<std::uint8_t>(LinkType::kData);
  dup.seq = 0;
  Message inner;
  inner.type = static_cast<std::uint8_t>(TwoBitType::kWrite0);
  inner.value = Value::from_int64(0);
  inner.has_value = true;
  dup.value = Value::from_bytes(twobit_codec().encode(inner));
  dup.has_value = true;
  dup.wire = link_codec().account(dup);
  pn.net->schedule_at(pn.net->now() + 1, [&] {
    pn.links[1]->on_message(pn.net->context(1), 0, dup);
  });
  ASSERT_TRUE(pn.net->run());
  EXPECT_EQ(pn.probes[1]->received[0].size(), 3u) << "duplicate delivered";
  EXPECT_EQ(pn.links[1]->link_stats().duplicates_received, 1u);
}

// ---- the register over the link ---------------------------------------------------

std::function<std::unique_ptr<RegisterProcessBase>(const GroupConfig&,
                                                   ProcessId)>
linked_twobit_factory(LinkOptions lopt = LinkOptions()) {
  return [lopt](const GroupConfig& cfg, ProcessId pid) {
    return std::make_unique<ReliableLinkProcess>(
        cfg, pid, std::make_unique<TwoBitProcess>(cfg, pid), lopt);
  };
}

TEST(LinkedRegister, QuickstartSemanticsPreserved) {
  SimRegisterGroup::Options gopt;
  gopt.cfg.n = 5;
  gopt.cfg.t = 2;
  gopt.cfg.initial = Value::from_string("v0");
  gopt.process_factory = linked_twobit_factory();
  SimRegisterGroup group(std::move(gopt));
  group.client().write_sync(Value::from_string("v1"));
  EXPECT_EQ(group.client().read_sync(3).value.to_string(), "v1");
  group.client().write_sync(Value::from_string("v2"));
  EXPECT_EQ(group.client().read_sync(1).value.to_string(), "v2");
  EXPECT_EQ(group.client().read_sync(0).value.to_string(), "v2");
}

struct LossCase {
  double loss;
  std::uint64_t seed;
};

class LinkedRegisterLossy : public testing::TestWithParam<LossCase> {};

TEST_P(LinkedRegisterLossy, AtomicAndLiveUnderLoss) {
  // The D8 experiment shows the bare two-bit register stalls at ~1% loss.
  // Over the link it must stay atomic AND live at 20x that.
  const auto& c = GetParam();
  SimWorkloadOptions opt;
  opt.cfg.n = 5;
  opt.cfg.t = 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.seed = c.seed;
  opt.ops_per_process = 10;
  opt.think_time_max = 300;
  opt.loss_rate = c.loss;
  opt.process_factory = linked_twobit_factory();
  opt.delay_factory = [](const GroupConfig&) {
    return make_uniform_delay(1, 700);
  };
  const auto result = run_sim_workload(opt);
  ASSERT_TRUE(result.drained) << "retransmission kept frames in flight";
  const auto check = result.check_atomicity(opt.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(result.completed_by_correct, result.quota_of_correct)
      << "liveness over lossy links is the whole point of the link layer";
}

std::vector<LossCase> loss_cases() {
  std::vector<LossCase> cases;
  std::uint64_t seed = 100;
  for (const double loss : {0.01, 0.05, 0.20}) {
    for (int s = 0; s < 4; ++s) cases.push_back({loss, seed++});
  }
  return cases;
}

std::string loss_case_name(const testing::TestParamInfo<LossCase>& param) {
  return "loss" + std::to_string(static_cast<int>(param.param.loss * 100)) +
         "_s" + std::to_string(param.param.seed);
}

INSTANTIATE_TEST_SUITE_P(LossSweep, LinkedRegisterLossy,
                         testing::ValuesIn(loss_cases()), loss_case_name);

TEST(LinkedRegister, CrashedMinorityWithGiveUp) {
  // Crashes + unbounded retries would keep the event queue alive forever;
  // max_retries turns a dead peer into a purged stream and the group stays
  // live through its quorum.
  LinkOptions lopt;
  lopt.max_retries = 8;
  SimWorkloadOptions opt;
  opt.cfg.n = 5;
  opt.cfg.t = 2;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  opt.seed = 77;
  opt.ops_per_process = 8;
  opt.crashes = 2;
  opt.crash_horizon = 20'000;
  opt.process_factory = linked_twobit_factory(lopt);
  const auto result = run_sim_workload(opt);
  ASSERT_TRUE(result.drained);
  const auto check = result.check_atomicity(opt.cfg.initial);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(result.completed_by_correct, result.quota_of_correct);
}

TEST(LinkedRegister, ComposesOnTheThreadRuntime) {
  // Same decorator on real threads (timers via the dispatcher heap). The
  // thread runtime's channels are reliable, so the link must behave as an
  // exactly-once pass-through.
  ThreadNetwork::Options opt;
  opt.cfg.n = 3;
  opt.cfg.t = 1;
  opt.cfg.writer = 0;
  opt.cfg.initial = Value::from_int64(0);
  LinkOptions lopt;
  lopt.retransmit_timeout = 50'000'000;  // 50 ms in ns
  opt.process_factory = [lopt](const GroupConfig& cfg, ProcessId pid) {
    return std::make_unique<ReliableLinkProcess>(
        cfg, pid, std::make_unique<TwoBitProcess>(cfg, pid), lopt);
  };
  ThreadNetwork net(opt);
  net.start();
  for (int k = 1; k <= 10; ++k) {
    ASSERT_TRUE(net.client().write_sync(Value::from_int64(k)).status.ok());
    EXPECT_EQ(net.client()
                  .read_sync(static_cast<ProcessId>(k % 3))
                  .value.to_int64(),
              k);
  }
  net.stop();
}

TEST(LinkedRegister, InnerAccountingSeparatesProtocolFromTransport) {
  SimRegisterGroup::Options gopt;
  gopt.cfg.n = 3;
  gopt.cfg.t = 1;
  gopt.cfg.initial = Value::from_int64(0);
  gopt.process_factory = linked_twobit_factory();
  SimRegisterGroup group(std::move(gopt));
  group.client().write_sync(Value::from_int64(1));
  group.settle();
  std::uint64_t inner_bits = 0, header_bits = 0, delivered = 0;
  for (ProcessId pid = 0; pid < 3; ++pid) {
    const auto& link =
        group.net().process_as<ReliableLinkProcess>(pid).link_stats();
    inner_bits += link.inner_control_bits;
    header_bits += link.header_control_bits;
    delivered += link.payloads_delivered;
  }
  // Every register-protocol frame costs exactly 2 control bits; transport
  // headers are bigger but belong to the link, not the protocol.
  EXPECT_EQ(inner_bits, 2 * delivered);
  EXPECT_GT(header_bits, inner_bits);
}

}  // namespace
}  // namespace tbr
