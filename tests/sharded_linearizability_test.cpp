// Per-key linearizability of the sharded engine: concurrent writers and
// readers hammer keys spread across shard boundaries through the real
// store (worker threads, batching windows), and every key's history must
// check out against the register spec.
//
// Two regimes:
//  * coalesce_writes = false — every put is its own protocol write with a
//    unique per-slot version, so each key's history is exactly an SWMR
//    register history and the fast SwmrChecker applies in full.
//  * coalesce_writes = true — queued same-slot writes collapse last-write-
//    wins. Surviving writes still carry unique versions 1..W; absorbed
//    puts never reach the register (they linearize immediately before
//    their survivor). The surviving-write + read history goes through the
//    exhaustive Wing-Gong checker (client put intervals from one pipeline
//    overlap, which the fast checker's sequential-writer model rejects by
//    design), plus direct assertions on what absorbed puts may report.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "checker/history.hpp"
#include "checker/swmr_checker.hpp"
#include "checker/wg_checker.hpp"
#include "kvstore/sharded_store.hpp"

namespace tbr {
namespace {

Tick now_ns(std::chrono::steady_clock::time_point epoch) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

/// Keys whose (shard, slot) pairs are all distinct — each key owns its
/// register — spanning at least `min_shards` different shards.
std::vector<std::string> distinct_register_keys(const ShardRouter& router,
                                                std::size_t count,
                                                std::size_t min_shards) {
  std::vector<std::string> keys;
  std::set<std::pair<std::uint32_t, std::uint32_t>> taken;
  std::set<std::uint32_t> shards;
  for (int k = 0; keys.size() < count && k < 100000; ++k) {
    const std::string key = "key-" + std::to_string(k);
    const auto at = router.place(key);
    if (!taken.insert({at.shard, at.slot}).second) continue;
    keys.push_back(key);
    shards.insert(at.shard);
  }
  EXPECT_GE(keys.size(), count);
  EXPECT_GE(shards.size(), min_shards);
  return keys;
}

TEST(ShardedLinearizability, PerKeyHistoriesAcrossShardBoundaries) {
  ShardedKvStore::Options opt;
  opt.shards = 4;
  opt.n = 3;
  opt.t = 1;
  opt.slots_per_shard = 4;
  opt.seed = 99;
  opt.coalesce_writes = false;  // every put = one protocol write
  ShardedKvStore store(std::move(opt));

  const auto keys = distinct_register_keys(store.router(), 6, 3);
  constexpr int kWritesPerKey = 8;
  constexpr int kReadsPerReader = 8;
  const auto epoch = std::chrono::steady_clock::now();

  std::vector<HistoryLog> logs(keys.size());
  {
    std::vector<std::jthread> threads;
    for (std::size_t k = 0; k < keys.size(); ++k) {
      const auto home = store.router().home_node(keys[k]);
      // One sequential writer per key (the SWMR model's single writer,
      // client id 0 in the key's history)...
      threads.emplace_back([&, k] {
        for (int round = 1; round <= kWritesPerKey; ++round) {
          Value v = Value::from_int64(round * 1000 + static_cast<int>(k));
          const auto id = logs[k].begin_write(0, now_ns(epoch), round, v);
          const OpResult done =
              store.client().put_sync(keys[k], std::move(v));
          logs[k].end_write(id, now_ns(epoch));
          ASSERT_TRUE(done.status.ok()) << done.status.message();
          EXPECT_EQ(done.version, round);
        }
      });
      // ...and two concurrent reader clients per key at fixed replicas
      // (one of them the home node, so read chains merge with write
      // chains). Client ids 1 and 2: the checker's "process" is a
      // sequential client, not a replica.
      for (const ProcessId client : {1u, 2u}) {
        const auto reader = static_cast<ProcessId>((home + client - 1) % 3);
        threads.emplace_back([&, k, client, reader] {
          for (int round = 0; round < kReadsPerReader; ++round) {
            const auto id = logs[k].begin_read(client, now_ns(epoch));
            const OpResult got = store.client().get_sync(keys[k], reader);
            logs[k].end_read(id, now_ns(epoch), got.value, got.version);
          }
        });
      }
    }
  }  // join

  for (std::size_t k = 0; k < keys.size(); ++k) {
    const auto check = SwmrChecker::check(logs[k].ops(), Value());
    EXPECT_TRUE(check.ok) << keys[k] << ": " << check.error;
    EXPECT_EQ(logs[k].completed_count(),
              static_cast<std::size_t>(kWritesPerKey + 2 * kReadsPerReader));
  }
}

TEST(ShardedLinearizability, WriteCoalescingKeepsPerKeyAtomicity) {
  ShardedKvStore::Options opt;
  opt.shards = 2;
  opt.n = 3;
  opt.t = 1;
  opt.slots_per_shard = 4;
  opt.seed = 7;
  opt.coalesce_writes = true;
  ShardedKvStore store(std::move(opt));

  const std::string key = "coalesced-key";
  const auto epoch = std::chrono::steady_clock::now();

  struct ClientOp {
    bool is_write = false;
    Tick start = 0;
    Tick end = 0;
    SeqNo version = -1;
    bool absorbed = false;
    Value value;
  };
  std::vector<ClientOp> writes;
  std::vector<ClientOp> reads;
  std::mutex reads_mu;

  {
    // Reader threads run throughout; the writer pipelines waves of async
    // puts so the shard's window sees genuine write runs.
    std::jthread writer([&] {
      constexpr int kWaves = 3, kPerWave = 3;
      int payload = 0;
      for (int wave = 0; wave < kWaves; ++wave) {
        std::vector<std::pair<std::size_t, Ticket>> wave_ops;
        for (int j = 0; j < kPerWave; ++j) {
          ClientOp op;
          op.is_write = true;
          op.value = Value::from_int64(++payload);
          op.start = now_ns(epoch);
          writes.push_back(op);
          wave_ops.emplace_back(writes.size() - 1,
                                store.client().put(key, op.value));
        }
        for (auto& [idx, ticket] : wave_ops) {
          const OpResult done = store.client().wait(ticket);
          ASSERT_TRUE(done.status.ok()) << done.status.message();
          writes[idx].end = now_ns(epoch);
          writes[idx].version = done.version;
          writes[idx].absorbed = done.absorbed;
        }
      }
    });
    std::vector<std::jthread> readers;
    for (ProcessId reader = 0; reader < 2; ++reader) {
      readers.emplace_back([&, reader] {
        for (int round = 0; round < 3; ++round) {
          ClientOp op;
          op.start = now_ns(epoch);
          const OpResult got = store.client().get_sync(key, reader);
          op.end = now_ns(epoch);
          op.version = got.version;
          op.value = got.value;
          const std::scoped_lock lock(reads_mu);
          reads.push_back(op);
        }
      });
    }
  }  // join

  // Surviving writes carry the register's version sequence 1..W.
  std::vector<SeqNo> survivor_versions;
  SeqNo max_version = 0;
  for (const auto& w : writes) {
    ASSERT_GE(w.version, 1);
    max_version = std::max(max_version, w.version);
    if (!w.absorbed) survivor_versions.push_back(w.version);
  }
  std::sort(survivor_versions.begin(), survivor_versions.end());
  for (std::size_t k = 0; k < survivor_versions.size(); ++k) {
    EXPECT_EQ(survivor_versions[k], static_cast<SeqNo>(k + 1))
        << "survivors must be exactly the register versions 1..W";
  }
  // An absorbed put reports its survivor's version, which must exist.
  for (const auto& w : writes) {
    if (!w.absorbed) continue;
    EXPECT_TRUE(std::binary_search(survivor_versions.begin(),
                                   survivor_versions.end(), w.version));
  }

  // The survivors + reads form a register history; hand it to the
  // exhaustive checker (intervals of pipelined puts overlap, which is
  // exactly what Wing-Gong handles and the fast checker's model rejects).
  std::vector<OpRecord> ops;
  std::uint64_t order = 0;
  for (const auto& w : writes) {
    if (w.absorbed) continue;
    OpRecord rec;
    rec.kind = OpRecord::Kind::kWrite;
    rec.proc = 0;
    rec.start = {w.start, ++order};
    rec.end = {w.end, ++order};
    rec.completed = true;
    rec.index = w.version;
    rec.value = w.value;
    ops.push_back(rec);
  }
  for (const auto& r : reads) {
    OpRecord rec;
    rec.kind = OpRecord::Kind::kRead;
    rec.proc = 1;
    rec.start = {r.start, ++order};
    rec.end = {r.end, ++order};
    rec.completed = true;
    rec.index = r.version;
    rec.value = r.value;
    ops.push_back(rec);
  }
  ASSERT_LE(ops.size(), 15u) << "keep the exhaustive checker tractable";
  EXPECT_TRUE(wg_linearizable(ops, Value()));

  // And the register's final state is the last queued value.
  const OpResult final_got = store.client().get_sync(key);
  EXPECT_EQ(final_got.value.to_int64(), 9);
  EXPECT_EQ(final_got.version, max_version);
}

}  // namespace
}  // namespace tbr
